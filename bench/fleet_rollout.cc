// Fleet rollout (§6.6): staged Tai Chi enablement across a 12-node cluster
// under 4x instance density.
//
// Every node starts as the production baseline (static partitioning) and is
// driven with the Fig. 3 fleet traffic mix plus a sustained VM-startup
// arrival stream sized so that the baseline control plane cannot hold the
// 160 ms startup SLO. The rollout then enables Tai Chi canary-first: at the
// first gate the canary nodes already sit inside the SLO while the
// still-baseline nodes breach it, and once the staged waves cover the fleet
// the fleet-wide p99 converges under the SLO.
//
// `--json <path>` writes the machine-readable report; `--trace <path>`
// writes the merged per-node Chrome trace; `--wavelog <path>` writes the
// rollout wave log. All three are byte-identical across same-seed reruns
// AND across `--threads` values: nodes are stepped in parallel within each
// epoch, but every node owns its clock/Rng/observability, so thread count
// cannot change what the simulation computes. Host-dependent numbers (wall
// clock, thread count) go to the separate `--perf-json <path>` sidecar.
//
// `--scenario <name>` swaps the offered load while the rollout machinery
// stays fixed: `baseline` (default, byte-identical to the historical
// harness), `diurnal` (day/night curve), `ddos` (spoofed flood at node 0),
// `crash-churn` (random node crashes with auto-restart; rebooted nodes
// rejoin the rollout's enabled set).
//
// `--autopilot` replaces the staged-wave rollout with the closed-loop
// controller (src/fleet/autopilot.h) on a heterogeneous hot/cool fleet:
// instead of pre-planned waves, the autopilot discovers which nodes need
// Tai Chi from the SLO signal alone and leaves the cool nodes' vCPU budget
// unspent. Prints the decision log and the enabled-vs-static vCPU contrast.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench/common.h"
#include "src/fleet/autopilot.h"
#include "src/fleet/cluster.h"
#include "src/fleet/load_gen.h"
#include "src/fleet/rollout.h"
#include "src/fleet/slo_monitor.h"
#include "src/scenario/chaos.h"
#include "src/scenario/generators.h"
#include "src/scenario/library.h"

using namespace taichi;

namespace {
constexpr int kNodes = 12;
constexpr int kDensity = 4;
constexpr double kStartupSloMs = 160.0;
constexpr double kHostInstantiateMs = 60.0;
// The SmartNIC-side budget: total SLO minus the host-side instantiation
// work that happens after the device workflow completes.
constexpr double kNicSloMs = kStartupSloMs - kHostInstantiateMs;

// --autopilot: closed-loop convergence instead of staged waves. A third of
// the fleet carries density-4 tenants (baseline cannot hold them), the rest
// density-1 (baseline holds easily); the controller has to find the hot
// subset from the SLO signal and leave the rest alone.
int RunAutopilot(int argc, char** argv, int threads) {
  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.seed = 42;
  ccfg.epoch = sim::Millis(5);
  ccfg.threads = threads;
  ccfg.node.mode = exp::Mode::kBaseline;
  const int hot = kNodes / 3;
  ccfg.tweak = [hot](int node, exp::TestbedConfig& cfg) {
    const int d = node < hot ? kDensity : 1;
    cfg.vm_startup.devices_per_vm = 6 * d;
    cfg.monitors.count = 6 * d;
  };
  fleet::Cluster cluster(ccfg);

  fleet::LoadGenConfig load = scenario::Fig3DensityMix(1).load;
  load.node_vm_scale.assign(static_cast<size_t>(kNodes), 1.0);
  for (int i = 0; i < hot; ++i) {
    load.node_vm_scale[static_cast<size_t>(i)] = kDensity;
  }
  scenario::Fig3Source source(load);
  source.Start(cluster);

  // p90 against the NIC-side budget: the same defended SLO the autopilot
  // scenarios use (one hurting node must stand out of a healthy fleet tail).
  fleet::AutopilotConfig acfg;
  acfg.slo.threshold = kNicSloMs;
  acfg.slo.percentile = 90.0;
  acfg.slo.min_samples = 8;
  acfg.slo.hotspot_factor = 1.3;
  fleet::Autopilot autopilot(&cluster, &source, acfg);

  fleet::SloMonitor monitor(&cluster, acfg.slo);

  // Phase 1: everyone baseline — the hot third breaches, the rest holds.
  cluster.RunFor(sim::Millis(300));
  const fleet::SloMonitor::Report before = monitor.Observe();

  // Phase 2: the controller converges the fleet (enables ride hysteresis +
  // settle windows, so give it room), then a fresh window grades the result.
  autopilot.Arm();
  cluster.RunFor(sim::Millis(2000));
  monitor.Observe();  // Reset the window to post-convergence samples only.
  cluster.RunFor(sim::Millis(400));
  const fleet::SloMonitor::Report after = monitor.Observe();
  autopilot.Disarm();
  source.Stop(cluster);

  std::printf("autopilot: converged in %zu windows\n", autopilot.windows());
  for (const fleet::Autopilot::Decision& d : autopilot.decisions()) {
    std::printf("  [%8.1f ms] %-9s node %2d%s%s  (%.2f)\n", sim::ToSeconds(d.at) * 1e3,
                fleet::ToString(d.act), d.node, d.target >= 0 ? " -> " : "",
                d.target >= 0 ? std::to_string(d.target).c_str() : "", d.value);
  }

  int static_vcpus = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    const exp::TestbedConfig& cfg = cluster.node(i).config();
    const int v = cfg.taichi.num_vcpus > 0 ? cfg.taichi.num_vcpus : cfg.dp_cpu_count;
    static_vcpus += v;
  }

  sim::Table t({"Node", "Density", "Mode at end", "p90 before (ms)", "p90 after (ms)"});
  for (size_t i = 0; i < cluster.size(); ++i) {
    t.AddRow({cluster.node_name(i), std::to_string(i < static_cast<size_t>(hot) ? kDensity : 1),
              cluster.node(i).taichi_enabled() ? "taichi" : "baseline",
              before.nodes[i].samples > 0 ? sim::Table::Num(before.nodes[i].value, 1) : "-",
              after.nodes[i].samples > 0 ? sim::Table::Num(after.nodes[i].value, 1) : "-"});
  }
  t.Print();

  std::printf("\nfleet p90 NIC-side startup (SLO %.0f ms)\n", kNicSloMs);
  std::printf("  before autopilot: %8.1f ms (%zu samples)\n", before.fleet_value,
              before.total_samples);
  std::printf("  after autopilot:  %8.1f ms (%zu samples)\n", after.fleet_value,
              after.total_samples);
  std::printf("vCPU budget: %d vCPUs on %d Tai Chi nodes (static placement: %d)\n",
              autopilot.enabled_vcpus(), autopilot.enabled_nodes(), static_vcpus);

  bench::JsonReport json("fleet_rollout_autopilot", argc, argv);
  json.Config("nodes", static_cast<int64_t>(kNodes));
  json.Config("hot_nodes", static_cast<int64_t>(hot));
  json.Config("seed", static_cast<int64_t>(ccfg.seed));
  json.Config("slo_ms", kNicSloMs);
  json.Metric("before.p90_ms", before.fleet_value);
  json.Metric("after.p90_ms", after.fleet_value);
  json.Metric("enables", static_cast<int64_t>(autopilot.enables()));
  json.Metric("enabled_vcpus", static_cast<int64_t>(autopilot.enabled_vcpus()));
  json.Metric("static_vcpus", static_cast<int64_t>(static_vcpus));
  if (!json.Write()) {
    return 1;
  }

  const bool shape_ok = before.fleet_breach && !after.fleet_breach &&
                        autopilot.enabled_nodes() >= 1 &&
                        autopilot.enabled_vcpus() < static_vcpus;
  std::printf("\n%s: the autopilot converges the fleet under the SLO on fewer vCPUs\n",
              shape_ok ? "PASS" : "SHAPE MISMATCH");
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader("Fleet rollout", "staged Tai Chi enablement vs the VM-startup SLO (§6.6)");

  std::string trace_path;
  std::string wavelog_path;
  std::string perf_json_path;
  std::string flows_json_path;
  std::string scenario_name = "baseline";
  int threads = 1;
  bool autopilot_mode = false;
  // Boolean flags first: the valued-flag loop below stops one short of the
  // last argument, which is exactly where a lone `--autopilot` sits.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--autopilot") == 0) {
      autopilot_mode = true;
    }
  }
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      trace_path = argv[i + 1];
    } else if (arg == "--wavelog") {
      wavelog_path = argv[i + 1];
    } else if (arg == "--perf-json") {
      perf_json_path = argv[i + 1];
    } else if (arg == "--flows-json") {
      flows_json_path = argv[i + 1];
    } else if (arg == "--scenario") {
      scenario_name = argv[i + 1];
    } else if (arg == "--threads") {
      threads = std::atoi(argv[i + 1]);
    }
  }
  if (autopilot_mode) {
    return RunAutopilot(argc, argv, threads);
  }
  if (scenario_name != "baseline" && scenario_name != "diurnal" && scenario_name != "ddos" &&
      scenario_name != "crash-churn") {
    std::fprintf(stderr,
                 "--scenario must be baseline, diurnal, ddos or crash-churn (got '%s')\n",
                 scenario_name.c_str());
    return 2;
  }

  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.seed = 42;
  ccfg.epoch = sim::Millis(5);
  ccfg.threads = threads;
  ccfg.node.mode = exp::Mode::kBaseline;
  ccfg.enable_trace = !trace_path.empty();
  ccfg.trace_capacity = 1 << 12;  // Per node; the merge multiplies by kNodes.
  // The Fig. 3 density mix (load shape + per-node tweak) has one definition,
  // in the scenario library; this harness and the scenario suite share it.
  // At 4x density each workflow provisions 24 devices (~37 ms of CP work),
  // so 30 arrivals/s/density saturates the 4 static CP CPUs — the baseline
  // queues and breaches while Tai Chi's donated DP cycles absorb it.
  const scenario::Fig3Mix mix = scenario::Fig3DensityMix(kDensity);
  ccfg.tweak = mix.tweak;
  fleet::Cluster cluster(ccfg);

  std::unique_ptr<scenario::TrafficSource> source;
  std::unique_ptr<scenario::ChaosEngine> chaos;
  if (scenario_name == "diurnal") {
    scenario::DiurnalConfig dcfg;
    dcfg.load = mix.load;
    dcfg.trough = 0.50;
    dcfg.peak = 1.40;
    source = std::make_unique<scenario::DiurnalSource>(dcfg);
  } else if (scenario_name == "ddos") {
    scenario::DdosConfig acfg;
    acfg.load = mix.load;
    acfg.targets = {0};
    acfg.attackers = 12;
    acfg.utilization = 0.50;
    acfg.size_bytes = 512;
    acfg.start_after = sim::Millis(100);
    source = std::make_unique<scenario::DdosSource>(acfg);
  } else {
    source = std::make_unique<scenario::Fig3Source>(mix.load);
  }
  if (scenario_name == "crash-churn") {
    scenario::ChaosConfig chcfg;
    chcfg.crash_prob = 0.002;
    chcfg.down_time = sim::Millis(40);
    chcfg.seed = 0x5eedull ^ ccfg.seed;
    chcfg.min_alive = kNodes - 2;
    chaos = std::make_unique<scenario::ChaosEngine>(&cluster, chcfg);
    // Listener order is the restart re-provision order: the traffic source
    // re-provisions load first, then the rollout (registered in phase 2)
    // re-enables Tai Chi on enabled-set nodes.
    chaos->AddListener(source.get());
  }
  source->Start(cluster);
  if (chaos != nullptr) {
    chaos->Arm();
  }

  fleet::SloConfig slo;
  slo.threshold = kNicSloMs;
  slo.percentile = 99.0;
  slo.min_samples = 20;
  fleet::SloMonitor monitor(&cluster, slo);

  // Wall clock around the epoch-stepping phases only (construction is
  // serial by design). This is the number --threads exists to shrink.
  const auto wall_start = std::chrono::steady_clock::now();

  // Phase 1: the whole fleet on the baseline. At 4x density the CP cannot
  // keep up and the startup SLO breaches fleet-wide.
  cluster.RunFor(sim::Millis(300));
  fleet::SloMonitor::Report before = monitor.Observe();

  // Phase 2: canary -> staged -> full rollout, each wave gated on the SLO.
  fleet::RolloutConfig rcfg;
  rcfg.waves = {2, 6, kNodes};
  // Later waves join with more queueing debt (they ran overloaded longer),
  // so the settle must cover the deepest backlog's drain time.
  rcfg.settle = sim::Millis(600);
  rcfg.soak = sim::Millis(300);
  rcfg.slo = slo;
  fleet::Rollout rollout(&cluster, rcfg);
  if (chaos != nullptr) {
    // Chaos restarts that land after a node was rolled onto Tai Chi must
    // re-enable it — the rollout observes them through the same lifecycle
    // path as every other listener.
    chaos->AddListener(&rollout);
  }
  rollout.Start();
  const sim::SimTime rollout_deadline = cluster.Now() + sim::Seconds(5);
  while (rollout.state() == fleet::Rollout::State::kSoaking &&
         cluster.Now() < rollout_deadline) {
    cluster.RunFor(sim::Millis(50));
  }

  // Phase 3: the converged fleet.
  monitor.Observe();  // Reset the window to post-rollout samples only.
  cluster.RunFor(sim::Millis(400));
  fleet::SloMonitor::Report after = monitor.Observe();
  if (chaos != nullptr) {
    // No new faults, but already-queued auto-restarts still fire so the
    // fleet ends whole.
    chaos->Quiesce();
    for (int i = 0; chaos->pending_restarts() > 0 && i < 64; ++i) {
      cluster.RunFor(ccfg.epoch);
    }
  }
  source->Stop(cluster);
  if (chaos != nullptr) {
    chaos->Disarm();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();

  std::printf("threads: %d, wall: %.0f ms\n", threads, wall_ms);
  if (scenario_name != "baseline") {
    std::printf("scenario: %s (source: %s)\n", scenario_name.c_str(), source->name());
  }
  if (chaos != nullptr) {
    std::printf("chaos: %d crashes, %d restarts, %zu pending, %zu/%d nodes up\n",
                chaos->crashes(), chaos->restarts(), chaos->pending_restarts(),
                cluster.alive_count(), kNodes);
  }
  std::printf("rollout: %s after %zu gates\n",
              rollout.state() == fleet::Rollout::State::kDone        ? "converged"
              : rollout.state() == fleet::Rollout::State::kRolledBack ? "ROLLED BACK"
                                                                      : "timed out",
              rollout.gate_reports().size());
  for (const fleet::Rollout::Event& e : rollout.history()) {
    std::printf("  [%8.1f ms] %s\n", sim::ToSeconds(e.at) * 1e3, e.what.c_str());
  }

  // The §6.6 split: at the first gate, the canary nodes hold the SLO the
  // baseline nodes are breaching.
  if (!rollout.gate_reports().empty()) {
    const fleet::SloMonitor::Report& gate = rollout.gate_reports().front();
    sim::Table t({"Node", "Mode at gate", "p99 (ms, +host)", "vs SLO"});
    for (size_t i = 0; i < gate.nodes.size(); ++i) {
      const fleet::SloMonitor::NodeStat& n = gate.nodes[i];
      const bool canary = i < static_cast<size_t>(rcfg.waves[0]);
      if (n.samples == 0) {
        t.AddRow({cluster.node_name(i), canary ? "taichi" : "baseline", "no samples", "-"});
        continue;
      }
      t.AddRow({cluster.node_name(i), canary ? "taichi" : "baseline",
                sim::Table::Num(n.value + kHostInstantiateMs, 1),
                sim::Table::Num((n.value + kHostInstantiateMs) / kStartupSloMs, 2) + "x"});
    }
    t.Print();
  }

  std::printf("\nfleet p99 startup (ms, incl. %.0f ms host side; SLO %.0f ms)\n",
              kHostInstantiateMs, kStartupSloMs);
  std::printf("  before rollout: %8.1f  (%.2fx SLO, %zu samples)\n",
              before.fleet_value + kHostInstantiateMs,
              (before.fleet_value + kHostInstantiateMs) / kStartupSloMs, before.total_samples);
  std::printf("  after rollout:  %8.1f  (%.2fx SLO, %zu samples)\n",
              after.fleet_value + kHostInstantiateMs,
              (after.fleet_value + kHostInstantiateMs) / kStartupSloMs, after.total_samples);

  // Fleet-wide heavy hitters from the merged per-node DP sketches: the flows
  // that burned the data-plane cycles during the rollout, named without any
  // exact per-flow table existing anywhere. Stdout + the --flows-json
  // sidecar only — the pinned --json report is unchanged.
  const obs::FlowMonitor fleet_flows =
      cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kDp);
  std::printf("\nfleet DP flow telemetry: ~%.0f distinct flows, %llu packets\n",
              fleet_flows.DistinctFlows(),
              static_cast<unsigned long long>(fleet_flows.total_packets()));
  {
    sim::Table t({"Heavy flow (DP tap)", "MB", "kpkts", "share"});
    const double total = static_cast<double>(fleet_flows.total_bytes());
    for (const auto& e : fleet_flows.TopK(8)) {
      t.AddRow({e.key.ToString(), sim::Table::Num(static_cast<double>(e.bytes) / 1e6, 1),
                sim::Table::Num(static_cast<double>(e.packets) / 1e3, 1),
                sim::Table::Num(total > 0 ? 100.0 * static_cast<double>(e.bytes) / total : 0.0,
                                1) +
                    "%"});
    }
    t.Print();
  }

  bench::JsonReport json("fleet_rollout", argc, argv);
  json.Config("nodes", static_cast<int64_t>(kNodes));
  json.Config("density", static_cast<int64_t>(kDensity));
  json.Config("seed", static_cast<int64_t>(ccfg.seed));
  if (scenario_name != "baseline") {
    // Only non-default runs name their scenario: the default report must
    // stay byte-identical to the pre-scenario harness.
    json.Config("scenario", scenario_name);
  }
  json.Config("vm_arrival_rate_per_sec", mix.load.vm_arrival_rate_per_sec);
  json.Config("slo_ms", kStartupSloMs);
  json.Config("soak_ms", sim::ToSeconds(rcfg.soak) * 1e3);
  json.Metric("rollout_done", static_cast<int64_t>(rollout.state() == fleet::Rollout::State::kDone));
  json.Metric("gates", static_cast<int64_t>(rollout.gate_reports().size()));
  json.Metric("before.p99_ms", before.fleet_value + kHostInstantiateMs);
  json.Metric("before.samples", static_cast<int64_t>(before.total_samples));
  json.Metric("after.p99_ms", after.fleet_value + kHostInstantiateMs);
  json.Metric("after.samples", static_cast<int64_t>(after.total_samples));
  if (!rollout.gate_reports().empty()) {
    const fleet::SloMonitor::Report& gate = rollout.gate_reports().front();
    sim::Summary canary_ms, baseline_ms;
    for (size_t i = 0; i < gate.nodes.size(); ++i) {
      if (gate.nodes[i].samples == 0) {
        continue;
      }
      (i < static_cast<size_t>(rcfg.waves[0]) ? canary_ms : baseline_ms)
          .Add(gate.nodes[i].value + kHostInstantiateMs);
    }
    if (!canary_ms.empty()) {
      json.Metric("gate0.canary_p99_ms.mean", canary_ms.mean());
    }
    if (!baseline_ms.empty()) {
      json.Metric("gate0.baseline_p99_ms.mean", baseline_ms.mean());
    }
  }
  json.Metric("fleet.startup_ms", cluster.MergeSummaryMetric("cp.vm_startup.latency_ms"));
  if (!json.Write()) {
    return 1;
  }
  if (!trace_path.empty() && !cluster.WriteMergedTrace(trace_path)) {
    return 1;
  }
  if (!wavelog_path.empty()) {
    // Simulated-time wave log: part of the byte-identical output contract.
    std::FILE* f = std::fopen(wavelog_path.c_str(), "w");
    if (f == nullptr) {
      TAICHI_ERROR(0, "bench: cannot open '%s' for writing", wavelog_path.c_str());
      return 1;
    }
    for (const fleet::Rollout::Event& e : rollout.history()) {
      std::fprintf(f, "[%8.1f ms] %s\n", sim::ToSeconds(e.at) * 1e3, e.what.c_str());
    }
    std::fclose(f);
  }
  if (!flows_json_path.empty()) {
    // Flow observability sidecar: the merged fleet sketches per tap. Fully
    // deterministic (sketches are seeded and merge is order-independent),
    // but kept out of the pinned --json report so its golden stays stable
    // as sketch telemetry evolves.
    std::string out = "{\n\"rx\": " +
                      cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kRx).ToJson(8) +
                      ",\n\"dp\": " + fleet_flows.ToJson(8) + ",\n\"tx\": " +
                      cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kTx).ToJson(8) +
                      "\n}\n";
    std::FILE* f = std::fopen(flows_json_path.c_str(), "w");
    if (f == nullptr) {
      TAICHI_ERROR(0, "bench: cannot open '%s' for writing", flows_json_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }
  if (!perf_json_path.empty()) {
    // Host-dependent sidecar; deliberately not part of the main report so
    // `--json` output stays byte-identical across thread counts.
    bench::JsonReport perf("fleet_rollout_perf", perf_json_path);
    perf.Config("nodes", static_cast<int64_t>(kNodes));
    perf.Config("threads", static_cast<int64_t>(threads));
    perf.Config("hw_cores", static_cast<int64_t>(std::thread::hardware_concurrency()));
    perf.Metric("wall_ms", wall_ms);
    perf.Metric("sim_ms", sim::ToSeconds(cluster.Now()) * 1e3);
    if (!perf.Write()) {
      return 1;
    }
  }

  const bool shape_ok = rollout.state() == fleet::Rollout::State::kDone &&
                        before.fleet_value + kHostInstantiateMs > kStartupSloMs &&
                        after.fleet_value + kHostInstantiateMs < kStartupSloMs;
  std::printf("\n%s: baseline breaches the SLO, the staged rollout converges under it\n",
              shape_ok ? "PASS" : "SHAPE MISMATCH");
  return 0;
}
