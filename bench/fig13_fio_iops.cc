// Figure 13: fio 4 KB storage IOPS under four mechanisms (fio_rw: 16
// threads, libaio). Paper: Tai Chi -0.06%, Tai Chi-vDP ~-6%, type-2 ~-25.7%
// versus baseline.
#include "bench/common.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 13", "fio 4KB IOPS across virtualization mechanisms");

  struct Row {
    exp::Mode mode;
    exp::FioResult result;
  };
  std::vector<Row> rows;

  for (exp::Mode mode : {exp::Mode::kBaseline, exp::Mode::kTaiChi, exp::Mode::kTaiChiVdp,
                         exp::Mode::kType2}) {
    auto bed = bench::MakeTestbed(mode);
    bed->SpawnBackgroundCp();
    bed->sim().RunFor(sim::Millis(2));
    exp::FioConfig fcfg;
    fcfg.threads = 16;
    fcfg.iodepth = 32;  // Saturate the storage path.
    exp::FioRunner fio(bed.get(), fcfg);
    rows.push_back({mode, fio.Run(sim::Millis(80), sim::Millis(20))});
  }

  const exp::FioResult& base = rows[0].result;
  sim::Table t({"Mechanism", "IOPS", "vs base", "bw (MB/s)", "avg lat (us)"});
  for (const Row& row : rows) {
    t.AddRow({exp::ToString(row.mode), sim::Table::Num(row.result.iops, 0),
              bench::Pct(row.result.iops, base.iops),
              sim::Table::Num(row.result.bw_mbps, 1),
              sim::Table::Num(row.result.io_latency_us.mean(), 1)});
  }
  t.Print();
  std::printf("\npaper: Tai Chi ~-0.06%%, Tai Chi-vDP ~-6%%, type-2 ~-25.7%% vs baseline\n");
  return 0;
}
