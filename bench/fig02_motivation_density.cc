// Figure 2: average VM startup time and device-management CP task execution
// time vs instance density, on the static-partition baseline (the paper's
// motivation). Paper: at 4x density CP execution degrades ~8x and VM
// startup exceeds its SLO by ~3.1x.
#include "bench/common.h"

using namespace taichi;

namespace {

// SLO targets used for normalization (absolute values are calibration
// constants; the figure's message is the normalized growth).
constexpr double kStartupSloMs = 160.0;
constexpr double kCpExecSloMs = 30.0;
// Host-side instantiation after the CP finishes device provisioning.
constexpr double kHostInstantiateMs = 60.0;

}  // namespace

int main() {
  bench::PrintHeader("Figure 2",
                     "VM startup & CP execution vs instance density (baseline)");

  sim::Table t({"Density", "CP exec (ms)", "CP exec / SLO", "VM startup (ms)",
                "VM startup / SLO"});
  double base_exec = 0;
  for (int density = 1; density <= 4; ++density) {
    auto bed = bench::MakeTestbed(
        exp::Mode::kBaseline, 42 + density, [density](exp::TestbedConfig& cfg) {
          // Higher density: more devices per VM and more monitoring load.
          cfg.vm_startup.devices_per_vm = 6 * density;
          cfg.monitors.count = 6 * density;
        });
    exp::VmStartupResult r = exp::RunVmStartupStorm(
        bed.get(), /*num_vms=*/60, /*arrival_rate_per_sec=*/50.0 * density,
        /*dp_utilization=*/0.25);
    double exec_ms = r.startup_ms.mean();
    if (density == 1) {
      base_exec = exec_ms;
    }
    double startup_ms = exec_ms + kHostInstantiateMs;
    t.AddRow({std::to_string(density) + "x", sim::Table::Num(exec_ms, 1),
              sim::Table::Num(exec_ms / kCpExecSloMs, 2),
              sim::Table::Num(startup_ms, 1),
              sim::Table::Num(startup_ms / kStartupSloMs, 2)});
    if (density == 4 && base_exec > 0) {
      std::printf("(CP exec degradation at 4x density: %.1fx; paper: ~8x)\n",
                  exec_ms / base_exec);
    }
  }
  t.Print();
  std::printf("\npaper: CP exec ~8x worse and startup ~3.1x over SLO at 4x density\n");
  return 0;
}
