// Scenario suite: named end-to-end experiments (trace replay, adversarial
// traffic, chaos injection) with deterministic pass/fail verdicts.
//
//   scenario_suite --list
//   scenario_suite --scenario ddos --json out.json
//   scenario_suite --scenario baseline --record-trace run.tcpt
//   scenario_suite --scenario baseline --replay run.tcpt
//
// Every verdict is a pure function of (scenario, nodes, seed, duration):
// the JSON carries no thread count and no wall clock, so CI compares the
// bytes produced with --threads 1 against --threads 4 with `cmp`. The
// process exits nonzero when any requested scenario fails its expectations
// — the suite is a gate, not just a report.
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/scenario/library.h"
#include "src/scenario/trace_format.h"

using namespace taichi;

namespace {

void PrintVerdict(const scenario::ScenarioVerdict& v) {
  std::printf("\n--- %s: %s ---\n", v.scenario.c_str(), v.pass ? "PASS" : "FAIL");
  std::printf("  windows: %zu  breaches: %zu  hotspot: %zu  attributed: %zu\n",
              v.windows, v.breach_windows, v.hotspot_windows, v.attributed_windows);
  std::printf("  samples: %zu  worst fleet pctl: %.1f ms  last: %.1f ms\n",
              v.total_samples, v.worst_fleet_value, v.last_fleet_value);
  if (v.crashes + v.restarts + v.stalls + v.floods + v.storms > 0) {
    std::printf("  chaos: %d crashes, %d restarts, %d stalls, %d floods, %d storms\n",
                v.crashes, v.restarts, v.stalls, v.floods, v.storms);
  }
  if (v.autopilot.engaged) {
    const scenario::ScenarioVerdict::AutopilotStats& a = v.autopilot;
    std::printf("  autopilot: recovery %zu windows, worst streak %zu\n",
                a.recovery_windows, a.max_breach_streak);
    std::printf(
        "  autopilot: %llu enables, %llu migrations, %llu boosts/%llu reverts, "
        "%llu sheds/%llu restores, %llu evict/%llu readmit, %llu backoffs\n",
        static_cast<unsigned long long>(a.enables),
        static_cast<unsigned long long>(a.migrations),
        static_cast<unsigned long long>(a.dp_boosts),
        static_cast<unsigned long long>(a.dp_reverts),
        static_cast<unsigned long long>(a.sheds),
        static_cast<unsigned long long>(a.restores),
        static_cast<unsigned long long>(a.evictions),
        static_cast<unsigned long long>(a.readmits),
        static_cast<unsigned long long>(a.backoffs));
    std::printf("  autopilot: %d nodes / %d vCPUs on Tai Chi at end (static: %d)\n",
                a.enabled_nodes, a.enabled_vcpus, a.static_vcpus);
    for (const fleet::Autopilot::Decision& d : a.decisions) {
      std::printf("    [%8.1f ms] %-9s node %2d%s%s  (%.2f)\n",
                  sim::ToSeconds(d.at) * 1e3, fleet::ToString(d.act), d.node,
                  d.target >= 0 ? " -> " : "",
                  d.target >= 0 ? std::to_string(d.target).c_str() : "", d.value);
    }
  }
  for (const scenario::ScenarioCheck& c : v.checks) {
    std::printf("  [%s] %-20s %s\n", c.pass ? "ok" : "XX", c.name.c_str(),
                c.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> requested;
  std::string json_path;
  std::string record_path;
  std::string replay_path;
  bool verbose = false;
  scenario::ScenarioOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
      continue;
    }
    if (arg == "--no-autopilot") {
      // The static counterfactual for the autopilot-* scenarios: same
      // fleet, fault and clock, nobody healing. CI compares the two runs.
      opts.autopilot = false;
      continue;
    }
    if (arg == "--list") {
      for (const std::string& name : scenario::ScenarioNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return 2;
    }
    if (arg == "--scenario") {
      requested.push_back(argv[++i]);
    } else if (arg == "--json") {
      json_path = argv[++i];
    } else if (arg == "--record-trace") {
      record_path = argv[++i];
    } else if (arg == "--replay") {
      replay_path = argv[++i];
    } else if (arg == "--nodes") {
      opts.nodes = std::atoi(argv[++i]);
    } else if (arg == "--density") {
      opts.density = std::atoi(argv[++i]);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--threads") {
      opts.threads = std::atoi(argv[++i]);
    } else if (arg == "--duration-ms") {
      opts.observed = sim::Millis(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (requested.empty()) {
    requested = scenario::ScenarioNames();
  }
  if ((!record_path.empty() || !replay_path.empty()) && requested.size() != 1) {
    std::fprintf(stderr, "--record-trace/--replay need exactly one --scenario\n");
    return 2;
  }

  bench::PrintHeader("Scenario suite",
                     "trace replay, adversarial traffic and chaos injection");

  std::vector<scenario::ScenarioVerdict> verdicts;
  for (const std::string& name : requested) {
    scenario::ScenarioSpec spec = scenario::BuildScenario(name, opts);
    if (spec.name.empty()) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
      return 2;
    }

    scenario::PacketTraceReplayer* replayer = nullptr;
    if (!replay_path.empty()) {
      scenario::PacketTrace trace;
      if (!scenario::PacketTrace::ReadFile(replay_path, &trace)) {
        std::fprintf(stderr, "cannot read trace '%s'\n", replay_path.c_str());
        return 2;
      }
      std::printf("replaying %zu records for %u nodes from %s\n",
                  trace.records.size(), trace.node_count, replay_path.c_str());
      // The replayed stream carries only DP packets (no CP workflow
      // arrivals), so SLO-sample expectations do not apply; the scenario's
      // cluster shape and SLO policy are kept, its traffic and chaos are not.
      spec.use_chaos = false;
      spec.expect = scenario::ScenarioExpectations{};
      spec.expect.min_fleet_samples = 0;
      // Raw new: std::function targets must be copyable, and the runner's
      // constructor invokes make_source exactly once, taking ownership.
      auto* raw = new scenario::PacketTraceReplayer(std::move(trace));
      replayer = raw;
      spec.make_source = [raw](fleet::Cluster&) -> std::unique_ptr<scenario::TrafficSource> {
        return std::unique_ptr<scenario::TrafficSource>(raw);
      };
    }

    scenario::ScenarioRunner runner(std::move(spec));

    std::unique_ptr<scenario::PacketTraceRecorder> recorder;
    if (!record_path.empty()) {
      recorder = std::make_unique<scenario::PacketTraceRecorder>(&runner.cluster());
      recorder->Attach();
      runner.AddListener(recorder.get());
    }

    scenario::ScenarioVerdict v = runner.Run();
    PrintVerdict(v);
    if (verbose) {
      for (size_t w = 0; w < runner.window_reports().size(); ++w) {
        const fleet::SloMonitor::Report& r = runner.window_reports()[w];
        std::printf("  window %zu @ %.0f ms: fleet pctl %.1f ms (%zu samples)%s\n", w,
                    sim::ToSeconds(r.at) * 1e3, r.fleet_value, r.total_samples,
                    r.fleet_breach ? " BREACH" : "");
        for (size_t n = 0; n < r.nodes.size(); ++n) {
          const fleet::SloMonitor::NodeStat& s = r.nodes[n];
          std::printf("    node %2zu: %3zu samples, pctl %7.1f ms%s%s\n", n, s.samples,
                      s.value, s.breach ? " breach" : "", s.hotspot ? " HOTSPOT" : "");
          for (const fleet::SloMonitor::HeavyFlow& f : s.heavy) {
            std::printf("      heavy: %s  %.1f%%%s\n", f.key.ToString().c_str(),
                        100.0 * f.share,
                        scenario::IsAttackFlow(f) ? "  << attack range" : "");
          }
        }
      }
    }
    if (replayer != nullptr) {
      std::printf("  replay: %llu injected, %llu dropped late\n",
                  static_cast<unsigned long long>(replayer->injected()),
                  static_cast<unsigned long long>(replayer->dropped_late()));
    }
    if (recorder != nullptr) {
      const scenario::PacketTrace trace = recorder->Finish();
      if (!trace.WriteFile(record_path)) {
        std::fprintf(stderr, "cannot write trace '%s'\n", record_path.c_str());
        return 2;
      }
      std::printf("  recorded %zu packet records -> %s\n", trace.records.size(),
                  record_path.c_str());
    }
    verdicts.push_back(std::move(v));
  }

  bool all_pass = true;
  for (const scenario::ScenarioVerdict& v : verdicts) {
    all_pass = all_pass && v.pass;
  }

  if (!json_path.empty()) {
    // One scenario: its verdict verbatim (easy to gate on). Several: a
    // suite wrapper. Either way: no thread count, no wall clock — the same
    // invocation at any --threads value writes the same bytes.
    std::string out;
    if (verdicts.size() == 1) {
      out = verdicts[0].ToJson();
    } else {
      out = "{\"suite\":[";
      for (size_t i = 0; i < verdicts.size(); ++i) {
        std::string one = verdicts[i].ToJson();
        while (!one.empty() && one.back() == '\n') {
          one.pop_back();
        }
        out += (i == 0 ? "" : ",") + one;
      }
      out += "]}\n";
    }
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", json_path.c_str());
      return 2;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

  std::printf("\n%s\n", all_pass ? "PASS: all scenario expectations held"
                                 : "FAIL: a scenario missed its expectations");
  return all_pass ? 0 : 1;
}
