// Table 1: prior co-scheduling mechanism classes vs Tai Chi on SmartNICs.
//
// Prior systems (Shenango/Caladan/Concord/Skyloft/Vessel) rely on
// OS-internal scheduling (or dedicated polling cores) and cannot break
// non-preemptible kernel routines, so their effective scheduling
// granularity for CP tasks is ms-scale. We measure:
//   * scheduling granularity — worst data-plane ring delay while CP tasks
//     (with kernel routines) are co-scheduled;
//   * framework overhead    — data-plane capacity given up to the mechanism
//     (e.g. a dedicated dispatcher core);
//   * transparency          — whether CP tasks need modification (static).
#include "bench/common.h"
#include "src/cp/cp_profiles.h"

using namespace taichi;

namespace {

struct Row {
  std::string name;
  double granularity_us = 0;  // p99.9 DP ring delay under CP co-location.
  double capacity_mpps = 0;   // Saturated DP throughput (framework cost).
  const char* transparency;
};

// Measures worst-case DP service delay while CP churn runs co-scheduled,
// and the saturated DP capacity.
Row Measure(const std::string& name, exp::Mode mode, int reserved_dispatcher_cpus,
            const char* transparency) {
  Row row;
  row.name = name;
  row.transparency = transparency;

  {
    // Granularity: lightly loaded pings + CP churn with kernel routines.
    auto bed = bench::MakeTestbed(mode, 42, [&](exp::TestbedConfig& cfg) {
      cfg.monitors.count = 8;
      cfg.monitors.period_mean = sim::Micros(500);
      cfg.monitors.user_work_mean = sim::Micros(80);
    });
    bed->SpawnBackgroundCp();
    cp::CpWorkProfile profile;
    profile.short_routine_prob = 0.85;  // Regular ms-scale routines.
    for (int i = 0; i < 6; ++i) {
      bed->kernel().Spawn("cp_churn_" + std::to_string(i),
                          cp::MakeCpTask(profile, 0, 900 + i), bed->cp_task_cpus());
    }
    bed->sim().RunFor(sim::Millis(5));
    exp::PingRunner ping(bed.get());
    sim::Summary rtt = ping.Run(800, sim::Micros(500));
    row.granularity_us = rtt.max() - rtt.min();  // Scheduling-induced delay.
  }
  {
    // Capacity: saturated stream with `reserved_dispatcher_cpus` removed
    // from the data plane (the polling-core tax of Shenango/Caladan).
    auto bed = bench::MakeTestbed(mode, 43, [&](exp::TestbedConfig& cfg) {
      cfg.dp_cpu_count = 8 - reserved_dispatcher_cpus;
    });
    exp::StreamConfig scfg;
    scfg.per_cpu_offered_pps = 1.6e6;
    scfg.size_bytes = 256;
    exp::StreamRunner stream(bed.get(), scfg);
    row.capacity_mpps = stream.Run(sim::Millis(40), sim::Millis(15)).delivered_pps / 1e6;
  }
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 1", "mechanism comparison: granularity / overhead / transparency");

  std::vector<Row> rows;
  // Kernel-scheduler co-scheduling: the Concord/Skyloft/Vessel class (and
  // UINTR-style user preemption, which also cannot split kernel routines).
  rows.push_back(Measure("kernel co-scheduling (Concord/Skyloft/Vessel class)",
                         exp::Mode::kNaiveCosched, 0, "Partial"));
  // Dedicated-dispatcher systems: Shenango/Caladan burn >=1 core.
  rows.push_back(Measure("dedicated dispatcher core (Shenango/Caladan class)",
                         exp::Mode::kNaiveCosched, 1, "Partial"));
  rows.push_back(Measure("Tai Chi", exp::Mode::kTaiChi, 0, "Full"));

  sim::Table t({"Mechanism", "Sched-induced DP delay", "DP capacity (Mpps)",
                "CP transparency"});
  for (const Row& row : rows) {
    const char* scale = row.granularity_us >= 1000 ? "ms-scale" : "us-scale";
    t.AddRow({row.name,
              sim::Table::Num(row.granularity_us, 1) + "us (" + scale + ")",
              sim::Table::Num(row.capacity_mpps, 2), row.transparency});
  }
  t.Print();
  std::printf("\npaper: prior work ms-scale granularity / high-or-low overhead /"
              " partial transparency; Tai Chi us-scale / low / full\n");
  return 0;
}
