// Sketch accuracy and throughput at scale: drives one obs::FlowMonitor with
// a deterministic skewed stream over >= 1M distinct flows, then checks the
// properties the observability layer sells — top-16 heavy-hitter recall,
// overestimate-only count-min point queries, HyperLogLog error inside its
// 3-sigma bound — and gates the per-packet update path at zero steady-state
// heap allocations.
//
// Output: a human-readable table; `--json <path>` writes the deterministic
// accuracy report (same seed, same bytes — CI archives it); `--perf-json
// <path>` writes a wall-clock sidecar (updates/sec, alloc counts) that is
// host-dependent by nature and kept out of the main report. Exit code is
// nonzero when any gate fails, so CI can run this binary directly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/obs/flow_monitor.h"
#include "src/obs/sketch/sketch_hash.h"

// Global allocation counter, as in bench_micro: the OnPacket hot loop below
// must not allocate once the monitor is constructed.
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace taichi;

namespace {

constexpr uint32_t kDistinct = 1u << 20;  // 1,048,576 flows, every one seen.
constexpr uint64_t kSkewedPackets = 4u << 20;  // Heavy traffic on top.
constexpr size_t kTopK = 16;

obs::FlowKey FlowOfRank(uint32_t rank) {
  obs::FlowKey k;
  k.src_ip = 0x0a000000u | (rank & 0xffffffu);
  k.dst_ip = 0x0a800000u | (rank >> 24);
  k.src_port = static_cast<uint16_t>(1024 + rank % 60000);
  k.dst_port = 443;
  k.proto = obs::kProtoTcp;
  return k;
}

// Counter-hash Zipf-ish rank, the same synthesis the dp::OpenLoopSource
// uses: no RNG state, fully determined by the packet index.
uint32_t SkewedRank(uint64_t n, double skew) {
  const uint64_t h = obs::sketch::Mix64(n ^ 0x57e7c4u ^ 0x9e3779b97f4a7c15ULL);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double r =
      std::pow(static_cast<double>(kDistinct), std::pow(u, skew));
  uint64_t rank = r < 1.0 ? 0 : static_cast<uint64_t>(r) - 1;
  return static_cast<uint32_t>(rank >= kDistinct ? kDistinct - 1 : rank);
}

uint32_t BytesOf(uint32_t rank, uint64_t n) {
  return 64 + static_cast<uint32_t>((rank ^ n) % 1400);
}

}  // namespace

int main(int argc, char** argv) {
  std::string perf_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-json") == 0) {
      perf_path = argv[i + 1];
    }
  }

  bench::PrintHeader("bench_sketch",
                     "flow sketch accuracy + zero-alloc update gate");

  obs::FlowMonitor monitor((obs::FlowMonitorConfig{}));
  std::vector<uint64_t> truth(kDistinct, 0);

  // Phase 1 — coverage: every flow appears once, guaranteeing >= 1M distinct.
  for (uint32_t rank = 0; rank < kDistinct; ++rank) {
    const uint32_t bytes = BytesOf(rank, rank);
    truth[rank] += bytes;
    monitor.OnPacket(FlowOfRank(rank), bytes);
  }
  // Phase 2 — skew: heavy traffic concentrated on the low ranks, so a small
  // set of elephants emerges from a sea of single-packet mice.
  for (uint64_t n = 0; n < kSkewedPackets; ++n) {
    const uint32_t rank = SkewedRank(n, /*skew=*/1.3);
    const uint32_t bytes = BytesOf(rank, n);
    truth[rank] += bytes;
    monitor.OnPacket(FlowOfRank(rank), bytes);
  }
  const uint64_t total_packets = kDistinct + kSkewedPackets;

  // --- Heavy-hitter recall ------------------------------------------------
  std::vector<uint32_t> order(kDistinct);
  for (uint32_t i = 0; i < kDistinct; ++i) {
    order[i] = i;
  }
  std::partial_sort(order.begin(), order.begin() + kTopK, order.end(),
                    [&](uint32_t a, uint32_t b) { return truth[a] > truth[b]; });
  const auto reported = monitor.TopK(kTopK);
  size_t hits = 0;
  for (const auto& e : reported) {
    for (size_t t = 0; t < kTopK; ++t) {
      if (e.key == FlowOfRank(order[t])) {
        ++hits;
        break;
      }
    }
  }
  const double recall = static_cast<double>(hits) / kTopK;

  // --- Count-min one-sided error ------------------------------------------
  // Every 4096th flow plus the true top-K: the estimate must never fall
  // below the truth.
  uint64_t cms_violations = 0;
  uint64_t cms_overestimate_sum = 0;
  uint64_t cms_checked = 0;
  auto check_cms = [&](uint32_t rank) {
    const uint64_t est = monitor.Query(FlowOfRank(rank)).bytes;
    ++cms_checked;
    if (est < truth[rank]) {
      ++cms_violations;
    } else {
      cms_overestimate_sum += est - truth[rank];
    }
  };
  for (uint32_t rank = 0; rank < kDistinct; rank += 4096) {
    check_cms(rank);
  }
  for (size_t t = 0; t < kTopK; ++t) {
    check_cms(order[t]);
  }

  // --- HyperLogLog error ---------------------------------------------------
  const double hll_est = monitor.DistinctFlows();
  const double hll_rel_err =
      std::abs(hll_est - kDistinct) / static_cast<double>(kDistinct);
  const double hll_bound = 3.0 * monitor.hll().ErrorBound();

  // --- Steady-state throughput + alloc gate --------------------------------
  // Replays a slice of the skewed stream against the warm monitor: every
  // structure is at capacity, so this is the long-run per-packet cost.
  constexpr uint64_t kHotUpdates = 1u << 20;
  const uint64_t alloc0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t n = 0; n < kHotUpdates; ++n) {
    const uint32_t rank = SkewedRank(n, /*skew=*/1.3);
    monitor.OnPacket(FlowOfRank(rank), BytesOf(rank, n));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t hot_allocs = g_allocs.load(std::memory_order_relaxed) - alloc0;
  const double hot_secs = std::chrono::duration<double>(t1 - t0).count();
  const double updates_per_sec = static_cast<double>(kHotUpdates) / hot_secs;

  std::printf("stream: %llu packets over %u distinct flows\n",
              static_cast<unsigned long long>(total_packets + kHotUpdates),
              kDistinct);
  std::printf("top-%zu recall:            %.3f (gate >= 0.9)\n", kTopK, recall);
  std::printf("cms violations:           %llu / %llu point queries (gate 0)\n",
              static_cast<unsigned long long>(cms_violations),
              static_cast<unsigned long long>(cms_checked));
  std::printf("cms mean overestimate:    %.1f bytes/flow\n",
              static_cast<double>(cms_overestimate_sum) /
                  static_cast<double>(cms_checked - cms_violations));
  std::printf("hll estimate:             %.0f (true %u, rel err %.4f, 3-sigma %.4f)\n",
              hll_est, kDistinct, hll_rel_err, hll_bound);
  std::printf("heavy-hitter evictions:   %llu\n",
              static_cast<unsigned long long>(monitor.topk().evictions()));
  std::printf("hot loop:                 %.1f M updates/sec, %llu allocs (gate 0)\n",
              updates_per_sec / 1e6, static_cast<unsigned long long>(hot_allocs));

  bench::JsonReport report("bench_sketch", argc, argv);
  report.Config("distinct_flows", static_cast<int64_t>(kDistinct));
  report.Config("skewed_packets", static_cast<int64_t>(kSkewedPackets));
  report.Config("top_k", static_cast<int64_t>(kTopK));
  report.Config("cms_width", static_cast<int64_t>(obs::FlowMonitorConfig{}.cms_width));
  report.Config("cms_depth", static_cast<int64_t>(obs::FlowMonitorConfig{}.cms_depth));
  report.Config("hll_precision", static_cast<int64_t>(obs::FlowMonitorConfig{}.hll_precision));
  report.Config("topk_capacity", static_cast<int64_t>(obs::FlowMonitorConfig{}.topk_capacity));
  report.Metric("topk_recall", recall);
  report.Metric("cms_violations", static_cast<int64_t>(cms_violations));
  report.Metric("cms_point_queries", static_cast<int64_t>(cms_checked));
  report.Metric("hll_estimate", hll_est);
  report.Metric("hll_rel_error", hll_rel_err);
  report.Metric("hll_3sigma_bound", hll_bound);
  report.Metric("heavy_evictions", static_cast<int64_t>(monitor.topk().evictions()));
  if (!report.Write()) {
    return 1;
  }
  bench::JsonReport perf("bench_sketch_perf", perf_path);
  perf.Config("hot_updates", static_cast<int64_t>(kHotUpdates));
  perf.Metric("updates_per_sec", updates_per_sec);
  perf.Metric("steady_state_allocs", static_cast<int64_t>(hot_allocs));
  if (!perf.Write()) {
    return 1;
  }

  bool failed = false;
  if (recall < 0.9) {
    std::fprintf(stderr, "FAIL: top-%zu recall %.3f < 0.9\n", kTopK, recall);
    failed = true;
  }
  if (cms_violations != 0) {
    std::fprintf(stderr, "FAIL: %llu count-min underestimates (one-sided error broken)\n",
                 static_cast<unsigned long long>(cms_violations));
    failed = true;
  }
  if (hll_rel_err > hll_bound) {
    std::fprintf(stderr, "FAIL: hll error %.4f outside 3-sigma bound %.4f\n",
                 hll_rel_err, hll_bound);
    failed = true;
  }
  if (hot_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations in the steady-state update loop "
                 "(expected 0; a sketch structure is growing after warm-up)\n",
                 static_cast<unsigned long long>(hot_allocs));
    failed = true;
  }
  return failed ? 1 : 0;
}
