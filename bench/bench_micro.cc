// Microbenchmarks (google-benchmark) of the framework's hot primitives:
// event-queue operations, RNG draws, IPI routing, context switches and the
// full pCPU<->vCPU switch cycle. These measure simulator wall-clock cost —
// useful for keeping the large experiments fast — and document the modeled
// costs of each path in simulated time.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/exp/testbed.h"
#include "src/os/behaviors.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

using namespace taichi;

static void BM_EventQueueSchedulePop(benchmark::State& state) {
  sim::EventQueue q;
  uint64_t t = 0;
  for (auto _ : state) {
    q.Schedule(++t, [] {});
    benchmark::DoNotOptimize(q.PopNext());
  }
}
BENCHMARK(BM_EventQueueSchedulePop);

static void BM_EventQueueCancel(benchmark::State& state) {
  sim::EventQueue q;
  uint64_t t = 0;
  for (auto _ : state) {
    sim::EventId id = q.Schedule(++t, [] {});
    benchmark::DoNotOptimize(q.Cancel(id));
  }
}
BENCHMARK(BM_EventQueueCancel);

// The idle-poll fast-forward pattern: a deep queue of standing timers that
// are constantly cancelled and rescheduled. The lazy-cancel design paid an
// O(log n) tombstone skim at every pop here; generation-tagged slots make
// Cancel O(1) against an arbitrary depth.
static void BM_EventQueueCancelRescheduleChurn(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  uint64_t t = 0;
  uint64_t lcg = 1;
  for (size_t i = 0; i < depth; ++i) {
    ids.push_back(q.Schedule(++t, [] {}));
  }
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    sim::EventId& id = ids[lcg % depth];
    q.Cancel(id);
    id = q.Schedule(++t, [] {});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueCancelRescheduleChurn)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_EventQueueIsPending(benchmark::State& state) {
  sim::EventQueue q;
  sim::EventId live = q.Schedule(1, [] {});
  sim::EventId dead = q.Schedule(2, [] {});
  q.Cancel(dead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.IsPending(live));
    benchmark::DoNotOptimize(q.IsPending(dead));
  }
}
BENCHMARK(BM_EventQueueIsPending);

// Pop throughput with a cold, deep heap — the 4-ary sift path.
static void BM_EventQueueDrain(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  uint64_t lcg = 42;
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    for (size_t i = 0; i < depth; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      q.Schedule(lcg % 100000, [] {});
    }
    state.ResumeTiming();
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.PopNext());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * depth));
}
BENCHMARK(BM_EventQueueDrain)->Arg(1024)->Arg(16384);

static void BM_RngDraw(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Exponential(100.0));
  }
}
BENCHMARK(BM_RngDraw);

static void BM_KernelContextSwitch(benchmark::State& state) {
  // Two yield-looping tasks on one CPU: each sim step is one task switch.
  sim::Simulation sim;
  hw::MachineConfig mcfg;
  mcfg.num_cpus = 1;
  hw::Machine machine(&sim, mcfg);
  os::Kernel kernel(&sim, &machine, os::KernelConfig{});
  for (int i = 0; i < 2; ++i) {
    kernel.Spawn("yielder",
                 std::make_unique<os::LoopBehavior>(std::vector<os::Action>{
                     os::Action::Compute(sim::Micros(1)), os::Action::Yield()}),
                 os::CpuSet::Of({0}));
  }
  for (auto _ : state) {
    sim.RunFor(sim::Micros(10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernel.context_switches()));
}
BENCHMARK(BM_KernelContextSwitch);

static void BM_IpiRoundTrip(benchmark::State& state) {
  sim::Simulation sim;
  hw::MachineConfig mcfg;
  mcfg.num_cpus = 2;
  hw::Machine machine(&sim, mcfg);
  os::Kernel kernel(&sim, &machine, os::KernelConfig{});
  for (auto _ : state) {
    kernel.SendIpi(0, 1, os::IpiType::kResched);
    sim.RunFor(sim::Micros(1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernel.ipis_sent()));
}
BENCHMARK(BM_IpiRoundTrip);

static void BM_GuestEnterExitCycle(benchmark::State& state) {
  sim::Simulation sim;
  hw::MachineConfig mcfg;
  mcfg.num_cpus = 2;
  hw::Machine machine(&sim, mcfg);
  os::Kernel kernel(&sim, &machine, os::KernelConfig{});
  os::CpuId vcpu = kernel.RegisterCpu(os::CpuKind::kVirtual, 100);
  kernel.OnlineCpu(vcpu);
  sim.RunFor(sim::Millis(1));
  kernel.Spawn("guest_work",
               std::make_unique<os::LoopBehavior>(std::vector<os::Action>{
                   os::Action::Compute(sim::Micros(100))}),
               os::CpuSet::Of({vcpu}));
  for (auto _ : state) {
    kernel.EnterGuest(0, vcpu);
    sim.RunFor(sim::Micros(10));
    if (kernel.guest_of(0) != os::kInvalidCpu) {
      kernel.ExitGuest(0, os::GuestExitReason::kForced);
    }
    sim.RunFor(sim::Micros(10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernel.guest_entries()));
}
BENCHMARK(BM_GuestEnterExitCycle);

static void BM_AcceleratorIngress(benchmark::State& state) {
  sim::Simulation sim;
  hw::Accelerator accel(&sim, {});
  uint32_t q = accel.AddQueue(0);
  hw::IoPacket pkt;
  uint64_t drained = 0;
  for (auto _ : state) {
    accel.Ingress(q, pkt);
    sim.RunFor(sim::Micros(4));
    std::vector<hw::IoPacket> out;
    drained += accel.ring(q).PopBurst(32, std::back_inserter(out));
  }
  benchmark::DoNotOptimize(drained);
}
BENCHMARK(BM_AcceleratorIngress);

static void BM_TestbedSecondOfTraffic(benchmark::State& state) {
  // Wall cost of simulating 1 ms of saturated baseline traffic.
  exp::TestbedConfig cfg;
  cfg.mode = exp::Mode::kBaseline;
  auto bed = std::make_unique<exp::Testbed>(cfg);
  bed->StartBackgroundLoad(1e6, 256, dp::OpenLoopConfig::Process::kPoisson);
  for (auto _ : state) {
    bed->sim().RunFor(sim::Millis(1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(bed->sim().events_executed()));
}
BENCHMARK(BM_TestbedSecondOfTraffic);

BENCHMARK_MAIN();
