// Microbenchmarks (google-benchmark) of the framework's hot primitives:
// event-queue operations, RNG draws, IPI routing, context switches and the
// full pCPU<->vCPU switch cycle. These measure simulator wall-clock cost —
// useful for keeping the large experiments fast — and document the modeled
// costs of each path in simulated time.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/dp/poll_service.h"
#include "src/exp/testbed.h"
#include "src/os/behaviors.h"
#include "src/sim/event_queue.h"
#include "src/sim/packet_pool.h"
#include "src/sim/random.h"

// Global allocation counter: the schedule/fire hot loop below asserts that
// the steady-state event path performs ZERO heap allocations. Before the
// InlineCallback rework, every scheduled closure whose capture exceeded
// libstdc++'s 16-byte std::function SBO cost one malloc per event — exactly
// 1.0 allocations/event on this loop.
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace taichi;

static void BM_EventQueueSchedulePop(benchmark::State& state) {
  sim::EventQueue q;
  uint64_t t = 0;
  for (auto _ : state) {
    q.Schedule(++t, [] {});
    benchmark::DoNotOptimize(q.PopNext());
  }
}
BENCHMARK(BM_EventQueueSchedulePop);

static void BM_EventQueueCancel(benchmark::State& state) {
  sim::EventQueue q;
  uint64_t t = 0;
  for (auto _ : state) {
    sim::EventId id = q.Schedule(++t, [] {});
    benchmark::DoNotOptimize(q.Cancel(id));
  }
}
BENCHMARK(BM_EventQueueCancel);

// The idle-poll fast-forward pattern: a deep queue of standing timers that
// are constantly cancelled and rescheduled. The lazy-cancel design paid an
// O(log n) tombstone skim at every pop here; generation-tagged slots make
// Cancel O(1) against an arbitrary depth.
static void BM_EventQueueCancelRescheduleChurn(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  uint64_t t = 0;
  uint64_t lcg = 1;
  for (size_t i = 0; i < depth; ++i) {
    ids.push_back(q.Schedule(++t, [] {}));
  }
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    sim::EventId& id = ids[lcg % depth];
    q.Cancel(id);
    id = q.Schedule(++t, [] {});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueCancelRescheduleChurn)->Arg(64)->Arg(1024)->Arg(16384);

// The post-rework hot path: a capture past std::function's 16-byte SBO but
// inside InlineCallback's inline buffer. With std::function this allocated
// every iteration; now it must not allocate at all.
static void BM_EventQueueScheduleFireInline(benchmark::State& state) {
  sim::EventQueue q;
  uint64_t t = 0;
  uint64_t acc = 0;
  uint64_t* sink = &acc;
  for (auto _ : state) {
    const uint64_t a = ++t;
    const uint64_t b = t ^ 0x9e3779b97f4a7c15ULL;
    q.Schedule(t, [sink, a, b] { *sink += a ^ b; });  // 24-byte capture.
    sim::EventQueue::Fired fired = q.PopNext();
    fired.fn();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleFireInline);

// In-place re-key of a live timer against a standing queue — the
// slice-timer/idle-poll pattern that previously paid Cancel+Schedule
// (slot free + realloc + closure rebuild).
static void BM_EventQueueReschedule(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  uint64_t t = 0;
  uint64_t lcg = 1;
  for (size_t i = 0; i < depth; ++i) {
    ids.push_back(q.Schedule(++t, [] {}));
  }
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    benchmark::DoNotOptimize(q.Reschedule(ids[lcg % depth], ++t));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueReschedule)->Arg(64)->Arg(1024)->Arg(16384);

// A periodic tick driven by ScheduleRepeating: one slot, one closure for the
// lifetime of the timer, re-keyed at every pop.
static void BM_SimulationRepeatingTick(benchmark::State& state) {
  sim::Simulation sim;
  uint64_t ticks = 0;
  sim.ScheduleRepeating(sim::Micros(1), [&ticks] { ++ticks; });
  for (auto _ : state) {
    sim.RunFor(sim::Micros(100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(ticks));
}
BENCHMARK(BM_SimulationRepeatingTick);

static void BM_EventQueueIsPending(benchmark::State& state) {
  sim::EventQueue q;
  sim::EventId live = q.Schedule(1, [] {});
  sim::EventId dead = q.Schedule(2, [] {});
  q.Cancel(dead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.IsPending(live));
    benchmark::DoNotOptimize(q.IsPending(dead));
  }
}
BENCHMARK(BM_EventQueueIsPending);

// Pop throughput with a cold, deep heap — the 4-ary sift path.
static void BM_EventQueueDrain(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  uint64_t lcg = 42;
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    for (size_t i = 0; i < depth; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      q.Schedule(lcg % 100000, [] {});
    }
    state.ResumeTiming();
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.PopNext());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * depth));
}
BENCHMARK(BM_EventQueueDrain)->Arg(1024)->Arg(16384);

static void BM_RngDraw(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Exponential(100.0));
  }
}
BENCHMARK(BM_RngDraw);

static void BM_KernelContextSwitch(benchmark::State& state) {
  // Two yield-looping tasks on one CPU: each sim step is one task switch.
  sim::Simulation sim;
  hw::MachineConfig mcfg;
  mcfg.num_cpus = 1;
  hw::Machine machine(&sim, mcfg);
  os::Kernel kernel(&sim, &machine, os::KernelConfig{});
  for (int i = 0; i < 2; ++i) {
    kernel.Spawn("yielder",
                 std::make_unique<os::LoopBehavior>(std::vector<os::Action>{
                     os::Action::Compute(sim::Micros(1)), os::Action::Yield()}),
                 os::CpuSet::Of({0}));
  }
  for (auto _ : state) {
    sim.RunFor(sim::Micros(10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernel.context_switches()));
}
BENCHMARK(BM_KernelContextSwitch);

static void BM_IpiRoundTrip(benchmark::State& state) {
  sim::Simulation sim;
  hw::MachineConfig mcfg;
  mcfg.num_cpus = 2;
  hw::Machine machine(&sim, mcfg);
  os::Kernel kernel(&sim, &machine, os::KernelConfig{});
  for (auto _ : state) {
    kernel.SendIpi(0, 1, os::IpiType::kResched);
    sim.RunFor(sim::Micros(1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernel.ipis_sent()));
}
BENCHMARK(BM_IpiRoundTrip);

static void BM_GuestEnterExitCycle(benchmark::State& state) {
  sim::Simulation sim;
  hw::MachineConfig mcfg;
  mcfg.num_cpus = 2;
  hw::Machine machine(&sim, mcfg);
  os::Kernel kernel(&sim, &machine, os::KernelConfig{});
  os::CpuId vcpu = kernel.RegisterCpu(os::CpuKind::kVirtual, 100);
  kernel.OnlineCpu(vcpu);
  sim.RunFor(sim::Millis(1));
  kernel.Spawn("guest_work",
               std::make_unique<os::LoopBehavior>(std::vector<os::Action>{
                   os::Action::Compute(sim::Micros(100))}),
               os::CpuSet::Of({vcpu}));
  for (auto _ : state) {
    kernel.EnterGuest(0, vcpu);
    sim.RunFor(sim::Micros(10));
    if (kernel.guest_of(0) != os::kInvalidCpu) {
      kernel.ExitGuest(0, os::GuestExitReason::kForced);
    }
    sim.RunFor(sim::Micros(10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernel.guest_entries()));
}
BENCHMARK(BM_GuestEnterExitCycle);

static void BM_AcceleratorIngress(benchmark::State& state) {
  sim::Simulation sim;
  sim::PacketPool pool(256);
  hw::Accelerator accel(&sim, {});
  accel.set_pool(&pool);
  uint32_t q = accel.AddQueue(0);
  hw::IoPacket pkt;
  uint64_t drained = 0;
  sim::PacketHandle out[32];
  for (auto _ : state) {
    accel.Ingress(q, pkt);
    sim.RunFor(sim::Micros(4));
    const size_t n = accel.ring(q).PopBurst(32, out);
    for (size_t i = 0; i < n; ++i) {
      pool.Free(out[i]);
    }
    drained += n;
  }
  benchmark::DoNotOptimize(drained);
}
BENCHMARK(BM_AcceleratorIngress);

static void BM_TestbedSecondOfTraffic(benchmark::State& state) {
  // Wall cost of simulating 1 ms of saturated baseline traffic.
  exp::TestbedConfig cfg;
  cfg.mode = exp::Mode::kBaseline;
  auto bed = std::make_unique<exp::Testbed>(cfg);
  bed->StartBackgroundLoad(1e6, 256, dp::OpenLoopConfig::Process::kPoisson);
  for (auto _ : state) {
    bed->sim().RunFor(sim::Millis(1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(bed->sim().events_executed()));
}
BENCHMARK(BM_TestbedSecondOfTraffic);

namespace {

// One self-rescheduling timer chain with a capture shaped like the kernel's
// hot closures: `this` plus a couple of ids (24-32 bytes, past the libstdc++
// std::function SBO). Kept logic-identical to the pre-change baseline harness
// so before/after events/sec compare the same work.
struct Chain {
  sim::Simulation* sim = nullptr;
  uint64_t token = 0;
  uint64_t fires = 0;
  sim::Duration gap = 1;

  void Arm() {
    const uint64_t id = token;
    const uint64_t flow = fires;
    sim->Schedule(gap, [this, id, flow] {
      fires += 1 + ((id ^ flow) & 0);
      Arm();
    });
  }
};

struct HotLoopResult {
  uint64_t events = 0;
  uint64_t allocs = 0;
  double seconds = 0;

  double events_per_sec() const { return events / seconds; }
};

// Runs 200 us of warm-up (slot pool and heap reach their high-water marks),
// then measures 20 ms of simulated time with steady-state allocation
// accounting.
HotLoopResult Measure(sim::Simulation& sim) {
  sim.RunFor(sim::Micros(200));
  const uint64_t ev0 = sim.events_executed();
  const uint64_t alloc0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunFor(sim::Millis(20));
  const auto t1 = std::chrono::steady_clock::now();
  HotLoopResult r;
  r.events = sim.events_executed() - ev0;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - alloc0;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

// Schedule/fire throughput: 64 chains that rebuild their closure and
// schedule a fresh one-shot event on every firing — the only way to express
// a standing timer before ScheduleRepeating existed, and the loop the
// pre-change baseline binary runs verbatim.
HotLoopResult RunScheduleFireLoop() {
  sim::Simulation sim(1);
  constexpr int kChains = 64;
  Chain chains[kChains];
  for (int i = 0; i < kChains; ++i) {
    chains[i].sim = &sim;
    chains[i].token = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
    chains[i].gap = 100 + static_cast<sim::Duration>(i);
    chains[i].Arm();
  }
  return Measure(sim);
}

// The same 64-timer workload — identical gaps, fire times and event count —
// expressed with ScheduleRepeating: one slot and one closure per chain for
// the whole run, re-keyed in place at every pop. This is the hot path the
// kernel tick, poll loops and arrival processes now use.
HotLoopResult RunRepeatingLoop() {
  sim::Simulation sim(1);
  constexpr int kChains = 64;
  static uint64_t fires[kChains];
  for (int i = 0; i < kChains; ++i) {
    fires[i] = 0;
    uint64_t* f = &fires[i];
    const uint64_t token = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
    sim.ScheduleRepeating(100 + static_cast<sim::Duration>(i),
                          [f, token] { *f += 1 + (token & 0); });
  }
  return Measure(sim);
}

// The batched zero-copy packet path end to end: arena Alloc at ingress,
// handle through the accelerator pipeline into the descriptor ring, burst
// gather by a busy-polling PollService, batch-sink delivery, arena Free.
// Injection (4 packets/us) outruns the DP service (~1.1 Mpps), so the loop
// also exercises the overload shedding paths (ring-full publish frees the
// slot back to the pool). The steady state must not allocate: handles move
// by value, event captures stay inline, and all pool/ring/burst storage is
// sized up front.
struct PacketPathResult {
  uint64_t packets = 0;  // Delivered through the batch sink.
  uint64_t offered = 0;  // Ingress attempts (delivered + shed).
  uint64_t allocs = 0;
  double seconds = 0;

  double packets_per_sec() const { return packets / seconds; }
};

PacketPathResult RunPacketPathLoop() {
  sim::Simulation sim(1);
  hw::MachineConfig mcfg;
  mcfg.num_cpus = 1;
  hw::Machine machine(&sim, mcfg);
  os::Kernel kernel(&sim, &machine, os::KernelConfig{});
  hw::Accelerator& accel = machine.accelerator();
  const uint32_t q = accel.AddQueue(0);

  dp::PollService service(0, dp::PollServiceConfig{}, dp::YieldPolicy::kBusyPoll);
  sim::PacketPool* pool = &machine.pool();
  service.set_pool(pool);
  service.AttachRing(&accel.ring(q));
  service.set_sink([pool](const sim::PacketHandle* batch, size_t count, sim::SimTime) {
    for (size_t i = 0; i < count; ++i) {
      pool->Free(batch[i]);
    }
  });
  os::Task* task = kernel.Spawn("dp", std::make_unique<os::BehaviorRef>(&service),
                                os::CpuSet::Of({0}), os::Priority::kHigh);
  service.BindTask(&kernel, task);

  uint64_t next_id = 0;
  sim.ScheduleRepeating(sim::Micros(1), [&accel, &sim, &next_id, q] {
    hw::IoPacket pkt;
    pkt.size_bytes = 256;
    pkt.created = sim.Now();
    for (int i = 0; i < 4; ++i) {
      pkt.id = next_id++;
      pkt.flow = static_cast<uint32_t>(pkt.id & 7);
      accel.Ingress(q, pkt);
    }
  });

  // Warm up past the measurement window so every vector (event slots, ring
  // buffers, per-packet Summary samples) reaches a capacity the measured
  // window cannot outgrow, then reset the per-packet summaries in place:
  // std::vector::clear() keeps capacity, making the steady state exactly
  // allocation-free rather than amortized-free.
  sim.RunFor(sim::Millis(25));
  const_cast<sim::Summary&>(accel.residency_us()).Clear();
  const_cast<sim::Summary&>(service.queue_delay_us()).Clear();

  const uint64_t p0 = service.packets_processed();
  const uint64_t in0 = accel.packets_ingressed();
  const uint64_t alloc0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunFor(sim::Millis(20));
  const auto t1 = std::chrono::steady_clock::now();

  PacketPathResult r;
  r.packets = service.packets_processed() - p0;
  r.offered = accel.packets_ingressed() - in0;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - alloc0;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace

// Custom main: runs the allocation-audited hot loop first (writing a
// machine-readable sidecar when `--perf-json <path>` is given, and failing
// the process if the steady state allocates), then hands the remaining argv
// to google-benchmark. CI runs this with --benchmark_filter=NONE to get just
// the hot-loop gate.
int main(int argc, char** argv) {
  std::string perf_path;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-json") == 0 && i + 1 < argc) {
      perf_path = argv[i + 1];
      ++i;
      continue;
    }
    bench_args.push_back(argv[i]);
  }

  const HotLoopResult sched = RunScheduleFireLoop();
  const HotLoopResult rep = RunRepeatingLoop();
  const PacketPathResult pp = RunPacketPathLoop();
  std::printf("hot_loop schedule_fire: events=%llu allocs=%llu events_per_sec=%.0f\n",
              static_cast<unsigned long long>(sched.events),
              static_cast<unsigned long long>(sched.allocs), sched.events_per_sec());
  std::printf("hot_loop repeating_fire: events=%llu allocs=%llu events_per_sec=%.0f\n",
              static_cast<unsigned long long>(rep.events),
              static_cast<unsigned long long>(rep.allocs), rep.events_per_sec());
  std::printf(
      "hot_loop packet_path: packets=%llu offered=%llu allocs=%llu packets_per_sec=%.0f\n",
      static_cast<unsigned long long>(pp.packets),
      static_cast<unsigned long long>(pp.offered),
      static_cast<unsigned long long>(pp.allocs), pp.packets_per_sec());

  bench::JsonReport report("bench_micro_hot_loop", perf_path);
  report.Config("chains", static_cast<int64_t>(64));
  report.Config("warmup_us", static_cast<int64_t>(200));
  report.Config("measure_ms", static_cast<int64_t>(20));
  report.Metric("schedule_fire_events", static_cast<int64_t>(sched.events));
  report.Metric("schedule_fire_steady_state_allocs", static_cast<int64_t>(sched.allocs));
  report.Metric("schedule_fire_events_per_sec", sched.events_per_sec());
  report.Metric("repeating_fire_events", static_cast<int64_t>(rep.events));
  report.Metric("repeating_fire_steady_state_allocs", static_cast<int64_t>(rep.allocs));
  report.Metric("repeating_fire_events_per_sec", rep.events_per_sec());
  report.Metric("packet_path_packets", static_cast<int64_t>(pp.packets));
  report.Metric("packet_path_offered", static_cast<int64_t>(pp.offered));
  report.Metric("packet_path_steady_state_allocs", static_cast<int64_t>(pp.allocs));
  report.Metric("packet_path_packets_per_sec", pp.packets_per_sec());
  if (!report.Write()) {
    return 1;
  }
  if (sched.allocs != 0 || rep.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: event hot loop allocated %llu+%llu times in steady "
                 "state (expected 0; a capture outgrew InlineCallback's "
                 "inline buffer, or the slot pool is churning)\n",
                 static_cast<unsigned long long>(sched.allocs),
                 static_cast<unsigned long long>(rep.allocs));
    return 1;
  }
  if (pp.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: packet path allocated %llu times in steady state "
                 "(expected 0; a packet is being copied instead of moved by "
                 "handle, or a hot capture outgrew the inline buffer)\n",
                 static_cast<unsigned long long>(pp.allocs));
    return 1;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
