// Hyperscale fleet scaling: how far the per-node cost curve holds as the
// cluster grows from the paper's 12-node testbed toward hyperscale counts.
//
// Each sweep point builds a fresh cluster of N lean baseline nodes, drives
// it with the flow-aggregate load model (millions of users folded into
// per-node arrival-mix state, O(nodes) memory) plus a standing population
// of inert management timers sized so every node's event queue crosses the
// calendar engage threshold, and steps the whole fleet for a fixed slice of
// simulated time. The figure of merit is events/sec/node: flat means the
// simulator scales linearly in node count, which is what the calendar
// queue + sharded epoch stepping + idle fast path exist to deliver.
//
// `--json <path>` is the deterministic report (per-point event totals,
// per-node min/max, merged-sketch distinct flows, calendar engagement):
// byte-identical across `--threads` values, which CI enforces with a t1 vs
// t4 `cmp`. Wall-clock numbers (events/sec, per-node rate ratios) go to the
// `--perf-json` sidecar only.
//
// Default sweep is {12, 256, 1024}; `--full` extends to {4096, 10240};
// `--nodes N` pins a single point. `--calendar-threshold 0` runs the same
// workload on the binary heap alone — CI diffs the deterministic metrics
// of the two modes to prove the calendar changes nothing but speed.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/fleet/cluster.h"
#include "src/fleet/load_gen.h"

using namespace taichi;

namespace {

struct Options {
  std::vector<int> nodes = {12, 256, 1024};
  int threads = 1;
  double duration_ms = 250.0;
  double users_per_node = 1000.0;
  double pps_per_user = 40.0;
  double flows_per_user = 1.0;
  // Per-node standing management timers (inert: their fires do nothing but
  // keep the queue populated). 2048 standing events with a 512 threshold
  // puts every node's queue well into calendar territory.
  int standing_timers = 2048;
  double timer_period_ms = 20.0;
  size_t calendar_threshold = 512;
  std::string perf_json_path;
};

struct PointResult {
  int nodes = 0;
  uint64_t events_total = 0;
  uint64_t events_min = 0;   // Across nodes.
  uint64_t events_max = 0;
  uint64_t aggregate_flows = 0;  // Configured fleet flow population.
  double distinct_flows = 0;     // Merged RX HLL estimate.
  double aggregate_pps = 0;      // Offered fleet packets/sec.
  int calendar_nodes = 0;        // Nodes whose queue engaged the calendar.
  double wall_ms = 0;            // Host-dependent; perf sidecar only.
};

PointResult RunPoint(const Options& opt, int nodes) {
  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = nodes;
  ccfg.seed = 42;
  ccfg.epoch = sim::Millis(5);
  ccfg.threads = opt.threads;
  ccfg.node.mode = exp::Mode::kBaseline;
  // Lean node: at 10k nodes the default 64k-slot packet arenas and 4096x4
  // sketches dominate memory for no benefit at this offered load.
  ccfg.node.packet_pool_capacity = 4096;
  ccfg.node.flow_monitor.cms_width = 512;
  ccfg.node.flow_monitor.cms_depth = 2;
  ccfg.node.flow_monitor.topk_capacity = 16;
  fleet::Cluster cluster(ccfg);

  const sim::Duration period = sim::MillisF(opt.timer_period_ms);
  for (size_t i = 0; i < cluster.size(); ++i) {
    sim::Simulation& sim = cluster.node(i).sim();
    sim.SetCalendarEngageThreshold(opt.calendar_threshold);
    // Standing management-plane timers: first fires spread evenly over one
    // period so the calendar sees a dense, cycling population rather than
    // one synchronized spike.
    for (int t = 0; t < opt.standing_timers; ++t) {
      const sim::Duration first =
          1 + (period * static_cast<sim::Duration>(t)) /
                  static_cast<sim::Duration>(opt.standing_timers);
      sim.ScheduleRepeating(first, period, [] {});
    }
  }

  fleet::LoadGenConfig load;
  load.seed = 2024;
  load.aggregate.enabled = true;
  load.aggregate.users_per_node = opt.users_per_node;
  load.aggregate.pps_per_user = opt.pps_per_user;
  load.aggregate.flows_per_user = opt.flows_per_user;
  // The startup-workflow stream and the monitor fleet are the rollout
  // harness's subject; here they would only blur the events/sec signal.
  load.vm_arrivals = false;
  load.spawn_monitors = false;
  fleet::LoadGen gen(&cluster, load);
  gen.Start();

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.RunFor(sim::MillisF(opt.duration_ms));
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_start)
          .count();
  gen.Stop();

  PointResult out;
  out.nodes = nodes;
  out.wall_ms = wall_ms;
  out.events_min = ~0ull;
  for (size_t i = 0; i < cluster.size(); ++i) {
    const uint64_t e = cluster.node(i).sim().events_executed();
    out.events_total += e;
    out.events_min = std::min(out.events_min, e);
    out.events_max = std::max(out.events_max, e);
    if (cluster.node(i).sim().calendar_engages() > 0) {
      ++out.calendar_nodes;
    }
  }
  for (const fleet::LoadGen::NodeMix& mix : gen.node_mixes()) {
    out.aggregate_flows += mix.flows;
    out.aggregate_pps += mix.pps;
  }
  out.distinct_flows =
      cluster.MergedFlowMonitor(fleet::Cluster::FlowTap::kRx).DistinctFlows();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader("Fleet scale", "events/sec/node across 12 -> 10k-node fleets");

  Options opt;
  bool full = false;
  int single_nodes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    }
  }
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes") {
      single_nodes = std::atoi(argv[i + 1]);
    } else if (arg == "--threads") {
      opt.threads = std::atoi(argv[i + 1]);
    } else if (arg == "--duration-ms") {
      opt.duration_ms = std::atof(argv[i + 1]);
    } else if (arg == "--users") {
      opt.users_per_node = std::atof(argv[i + 1]);
    } else if (arg == "--pps") {
      opt.pps_per_user = std::atof(argv[i + 1]);
    } else if (arg == "--flows-per-user") {
      opt.flows_per_user = std::atof(argv[i + 1]);
    } else if (arg == "--standing-timers") {
      opt.standing_timers = std::atoi(argv[i + 1]);
    } else if (arg == "--timer-period-ms") {
      opt.timer_period_ms = std::atof(argv[i + 1]);
    } else if (arg == "--calendar-threshold") {
      opt.calendar_threshold = static_cast<size_t>(std::atoll(argv[i + 1]));
    } else if (arg == "--perf-json") {
      opt.perf_json_path = argv[i + 1];
    }
  }
  if (single_nodes > 0) {
    opt.nodes = {single_nodes};
  } else if (full) {
    opt.nodes = {12, 256, 1024, 4096, 10240};
  }

  std::vector<PointResult> points;
  points.reserve(opt.nodes.size());
  for (int n : opt.nodes) {
    std::printf("running %d nodes (%.0f ms sim, %d threads)...\n", n, opt.duration_ms,
                opt.threads);
    std::fflush(stdout);
    points.push_back(RunPoint(opt, n));
  }

  // The scaling verdict: wall cost per simulated event. Total event count
  // grows linearly with the fleet, so flat events/sec (equivalently flat
  // us/event) means the simulator is linear in node count — per-node wall
  // rate divided by N would collapse by construction on fixed hardware.
  const PointResult& base = points.front();
  const double base_rate =
      base.wall_ms > 0
          ? static_cast<double>(base.events_total) / (base.wall_ms * 1e-3)
          : 0;

  sim::Table t({"Nodes", "Events", "Ev/node min..max", "Flows (cfg)", "Flows (HLL)",
                "Calendar", "Wall (ms)", "Mev/s", "us/event", "vs base"});
  for (const PointResult& p : points) {
    const double rate =
        p.wall_ms > 0 ? static_cast<double>(p.events_total) / (p.wall_ms * 1e-3) : 0;
    t.AddRow({std::to_string(p.nodes), std::to_string(p.events_total),
              std::to_string(p.events_min) + ".." + std::to_string(p.events_max),
              std::to_string(p.aggregate_flows), sim::Table::Num(p.distinct_flows, 0),
              std::to_string(p.calendar_nodes) + "/" + std::to_string(p.nodes),
              sim::Table::Num(p.wall_ms, 0), sim::Table::Num(rate / 1e6, 2),
              sim::Table::Num(rate > 0 ? 1e6 / rate : 0, 3),
              base_rate > 0 ? sim::Table::Num(rate / base_rate, 2) + "x" : "-"});
  }
  t.Print();

  // No `threads` key here: thread count is host config and the whole point
  // is that it cannot change these numbers (CI byte-compares t1 vs t4).
  bench::JsonReport json("fleet_scale", argc, argv);
  json.Config("duration_ms", opt.duration_ms);
  json.Config("users_per_node", opt.users_per_node);
  json.Config("pps_per_user", opt.pps_per_user);
  json.Config("flows_per_user", opt.flows_per_user);
  json.Config("standing_timers", static_cast<int64_t>(opt.standing_timers));
  json.Config("calendar_threshold", static_cast<int64_t>(opt.calendar_threshold));
  for (const PointResult& p : points) {
    const std::string k = "n" + std::to_string(p.nodes) + ".";
    json.Metric(k + "events_total", static_cast<int64_t>(p.events_total));
    json.Metric(k + "events_per_node_min", static_cast<int64_t>(p.events_min));
    json.Metric(k + "events_per_node_max", static_cast<int64_t>(p.events_max));
    json.Metric(k + "aggregate_flows", static_cast<int64_t>(p.aggregate_flows));
    json.Metric(k + "aggregate_pps", p.aggregate_pps);
    json.Metric(k + "distinct_flows_hll", p.distinct_flows);
    json.Metric(k + "calendar_nodes", static_cast<int64_t>(p.calendar_nodes));
  }
  if (!json.Write()) {
    return 1;
  }

  if (!opt.perf_json_path.empty()) {
    // Host-dependent sidecar: wall clock and the derived scaling ratios stay
    // out of the deterministic report (CI byte-compares that one).
    bench::JsonReport perf("fleet_scale_perf", opt.perf_json_path);
    perf.Config("threads", static_cast<int64_t>(opt.threads));
    perf.Config("hw_cores", static_cast<int64_t>(std::thread::hardware_concurrency()));
    for (const PointResult& p : points) {
      const std::string k = "n" + std::to_string(p.nodes) + ".";
      const double rate =
          p.wall_ms > 0 ? static_cast<double>(p.events_total) / (p.wall_ms * 1e-3) : 0;
      perf.Metric(k + "wall_ms", p.wall_ms);
      perf.Metric(k + "events_per_sec", rate);
      perf.Metric(k + "us_per_event", rate > 0 ? 1e6 / rate : 0);
      perf.Metric(k + "rate_vs_base", base_rate > 0 ? rate / base_rate : 0);
    }
    if (!perf.Write()) {
      return 1;
    }
  }

  // The acceptance shape: every sweep point keeps its per-event wall cost
  // within 2x of the smallest fleet's, and the calendar actually engaged
  // (unless it was disabled for the heap-only comparison run).
  bool shape_ok = true;
  for (const PointResult& p : points) {
    const double rate =
        p.wall_ms > 0 ? static_cast<double>(p.events_total) / (p.wall_ms * 1e-3) : 0;
    if (base_rate > 0 && rate * 2 < base_rate) {
      shape_ok = false;
    }
    if (opt.calendar_threshold != 0 && p.calendar_nodes != p.nodes) {
      shape_ok = false;
    }
  }
  std::printf("\n%s: per-event wall cost holds within 2x of the %d-node baseline\n",
              shape_ok ? "PASS" : "SHAPE MISMATCH", base.nodes);
  return shape_ok ? 0 : 1;
}
