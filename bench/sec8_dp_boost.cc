// §8 "Enhanced data-plane performance": in low CP-demand environments,
// Tai Chi's dynamic partitioning reallocates 50% of the CP's physical CPUs
// (4 -> 2) to the data plane. Paper: +39% peak IOPS and +43% connections
// per second, while CP performance stays at baseline levels thanks to idle
// DP cycle stealing.
#include "bench/common.h"

using namespace taichi;

namespace {

struct Shape {
  int dp_cpus;
  exp::Mode mode;
  const char* name;
};

}  // namespace

int main() {
  bench::PrintHeader("Section 8", "inverse repartitioning: +DP CPUs, CP on idle cycles");

  const Shape kBaselineShape{8, exp::Mode::kBaseline, "baseline 8 DP / 4 CP"};
  const Shape kBoostShape{10, exp::Mode::kTaiChi, "Tai Chi 10 DP / 2 CP"};

  sim::Table t({"Configuration", "peak IOPS", "CPS", "synth_cp avg (ms)"});
  double base_iops = 0, base_cps = 0, base_cp = 0;
  double boost_iops = 0, boost_cps = 0, boost_cp = 0;
  for (const Shape& shape : {kBaselineShape, kBoostShape}) {
    double iops, cps, cp_ms;
    {
      auto bed = bench::MakeTestbed(shape.mode, 42, [&](exp::TestbedConfig& cfg) {
        cfg.dp_cpu_count = shape.dp_cpus;
        cfg.taichi.num_vcpus = shape.dp_cpus;
      });
      exp::FioConfig fcfg;
      fcfg.threads = 16;
      fcfg.iodepth = 32;
      exp::FioRunner fio(bed.get(), fcfg);
      iops = fio.Run(sim::Millis(60), sim::Millis(20)).iops;
    }
    {
      auto bed = bench::MakeTestbed(shape.mode, 43, [&](exp::TestbedConfig& cfg) {
        cfg.dp_cpu_count = shape.dp_cpus;
        cfg.taichi.num_vcpus = shape.dp_cpus;
      });
      exp::RrConfig rcfg;
      rcfg.connections = 256;
      rcfg.round_trips_per_txn = 3;
      rcfg.setup_dp_cost_ns = 1500;
      exp::RrRunner rr(bed.get(), rcfg);
      cps = rr.Run(sim::Millis(60), sim::Millis(20)).txn_per_sec;
    }
    {
      // Low CP demand: 6 concurrent tasks; DP mostly idle (10% util).
      auto bed = bench::MakeTestbed(shape.mode, 44, [&](exp::TestbedConfig& cfg) {
        cfg.dp_cpu_count = shape.dp_cpus;
        cfg.taichi.num_vcpus = shape.dp_cpus;
      });
      cp_ms = exp::RunSynthCp(bed.get(), 6, 0.10).exec_time_ms.mean();
    }
    if (shape.dp_cpus == 8) {
      base_iops = iops;
      base_cps = cps;
      base_cp = cp_ms;
    } else {
      boost_iops = iops;
      boost_cps = cps;
      boost_cp = cp_ms;
    }
    t.AddRow({shape.name, sim::Table::Num(iops, 0), sim::Table::Num(cps, 0),
              sim::Table::Num(cp_ms, 1)});
  }
  t.Print();
  std::printf("\nmeasured: IOPS %s, CPS %s, CP exec %s vs baseline\n",
              bench::Pct(boost_iops, base_iops).c_str(),
              bench::Pct(boost_cps, base_cps).c_str(),
              bench::Pct(boost_cp, base_cp).c_str());
  std::printf("paper: +39%% peak IOPS, +43%% CPS, CP performance consistent with baseline\n");
  return 0;
}
