// Table 5: ping round-trip time across three mechanisms, demonstrating that
// the hardware workload probe hides vCPU scheduling latency.
// Paper (us):          min  avg  max  mdev
//   Baseline            26   30   38    5
//   Tai Chi             27   30   38    5
//   Tai Chi w/o probe   32   37  115    9
#include "bench/common.h"

using namespace taichi;

int main(int argc, char** argv) {
  bench::PrintHeader("Table 5", "ping RTT: baseline vs Tai Chi vs Tai Chi w/o HW probe");

  bench::JsonReport json("tab05_ping_rtt", argc, argv);
  json.Config("pings", static_cast<int64_t>(2000));
  json.Config("seed", static_cast<int64_t>(42));

  auto run = [](exp::Mode mode) {
    auto bed = bench::MakeTestbed(mode, 42, [](exp::TestbedConfig& cfg) {
      // Sustained CP pressure so vCPUs regularly occupy the (otherwise
      // idle) DP CPUs while pings arrive.
      cfg.monitors.count = 12;
      cfg.monitors.period_mean = sim::Micros(300);
      cfg.monitors.user_work_mean = sim::Micros(60);
    });
    bed->SpawnBackgroundCp();
    bed->sim().RunFor(sim::Millis(5));
    exp::PingRunner ping(bed.get());
    return ping.Run(/*count=*/2000, /*interval=*/sim::Millis(1));
  };

  sim::Table t({"Mechanism", "Min (us)", "Avg (us)", "Max (us)", "Mdev (us)"});
  for (exp::Mode mode :
       {exp::Mode::kBaseline, exp::Mode::kTaiChi, exp::Mode::kTaiChiNoHwProbe}) {
    sim::Summary rtt = run(mode);
    t.AddRow({exp::ToString(mode), sim::Table::Num(rtt.min(), 0),
              sim::Table::Num(rtt.mean(), 0), sim::Table::Num(rtt.max(), 0),
              sim::Table::Num(rtt.mdev(), 1)});
    json.Metric(std::string(exp::ToString(mode)) + ".rtt_us", rtt);
  }
  t.Print();
  std::printf(
      "\npaper: baseline 26/30/38/5, Tai Chi 27/30/38/5, w/o probe 32/37/115/9 (us)\n");
  return json.Write() ? 0 : 1;
}
