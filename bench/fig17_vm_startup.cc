// Figure 17: average VM startup time vs instance density, with and without
// Tai Chi. Paper: Tai Chi reduces average startup latency ~3.1x in
// high-density environments by running device-management CP tasks on vCPUs
// fed by idle DP cycles.
#include "bench/common.h"

using namespace taichi;

namespace {
constexpr double kStartupSloMs = 160.0;
constexpr double kHostInstantiateMs = 60.0;
}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader("Figure 17", "VM startup vs density: baseline vs Tai Chi");

  bench::JsonReport json("fig17_vm_startup", argc, argv);
  json.Config("num_vms", static_cast<int64_t>(60));
  json.Config("slo_ms", kStartupSloMs);
  sim::Table t({"Density", "Baseline (ms)", "Base/SLO", "Tai Chi (ms)", "TaiChi/SLO",
                "Reduction"});
  for (int density : {1, 2, 3, 4}) {
    auto run = [&](exp::Mode mode) {
      auto bed = bench::MakeTestbed(mode, 42 + density, [density](exp::TestbedConfig& cfg) {
        cfg.vm_startup.devices_per_vm = 6 * density;
        cfg.monitors.count = 6 * density;
      });
      exp::VmStartupResult r = exp::RunVmStartupStorm(
          bed.get(), /*num_vms=*/60, /*arrival_rate_per_sec=*/50.0 * density,
          /*dp_utilization=*/0.25);
      return r.startup_ms.mean() + kHostInstantiateMs;
    };
    double base = run(exp::Mode::kBaseline);
    double taichi = run(exp::Mode::kTaiChi);
    t.AddRow({std::to_string(density) + "x", sim::Table::Num(base, 1),
              sim::Table::Num(base / kStartupSloMs, 2), sim::Table::Num(taichi, 1),
              sim::Table::Num(taichi / kStartupSloMs, 2),
              sim::Table::Num(base / taichi, 2) + "x"});
    const std::string prefix = "density_" + std::to_string(density) + "x.";
    json.Metric(prefix + "baseline_ms", base);
    json.Metric(prefix + "taichi_ms", taichi);
    json.Metric(prefix + "reduction", base / taichi);
  }
  t.Print();
  std::printf("\npaper: ~3.1x startup reduction at high instance density\n");
  return json.Write() ? 0 : 1;
}
