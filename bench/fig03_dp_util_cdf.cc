// Figure 3: CDF of data-plane CPU utilization across the fleet.
// Paper: 1.2M per-second samples; 99.68% of values below 32.5% (67.5% of
// CPU cycles idle at the p99 provisioning point).
//
// We emulate fleet heterogeneity by drawing each (node, CPU)'s average load
// from a lognormal and driving bursty traffic at that level, then sampling
// per-second utilization exactly as the production collector does.
#include <algorithm>

#include "bench/common.h"
#include "src/sim/random.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 3", "CDF of data-plane CPU utilization (per-second samples)");

  sim::CdfBuilder cdf;
  sim::Rng fleet_rng(2024);
  constexpr int kNodes = 12;
  constexpr int kSecondsPerNode = 20;

  for (int node = 0; node < kNodes; ++node) {
    auto bed = bench::MakeTestbed(exp::Mode::kBaseline, 1000 + node);
    // Draw each CPU's average utilization from the fleet mix: median ~9%,
    // a thin tail of hot CPUs reaching the low 30s (and rarely beyond).
    std::vector<double> utils;
    for (size_t i = 0; i < bed->active_dp_cpus().size(); ++i) {
      utils.push_back(std::clamp(fleet_rng.LogNormal(0.095, 0.50), 0.005, 0.85));
    }
    bed->StartBackgroundBurstyLoadPerCpu(utils, 512);

    std::vector<sim::Duration> last_work(bed->service_count(), 0);
    for (int second = 0; second < kSecondsPerNode; ++second) {
      bed->sim().RunFor(sim::Seconds(1));
      for (size_t i = 0; i < bed->service_count(); ++i) {
        sim::Duration work = bed->service(i).work_time();
        double util = sim::ToSeconds(work - last_work[i]);
        last_work[i] = work;
        cdf.Add(util * 100.0);
      }
    }
  }

  sim::Table t({"Utilization threshold (%)", "Fraction of samples below"});
  for (double x : {5.0, 10.0, 15.0, 20.0, 25.0, 32.5, 40.0, 50.0, 75.0}) {
    t.AddRow({sim::Table::Num(x, 1), sim::Table::Num(cdf.FractionBelow(x) * 100.0, 2) + "%"});
  }
  t.Print();
  std::printf("\nSamples: %zu   paper: 99.68%% of samples below 32.5%% utilization\n",
              cdf.count());
  std::printf("measured: %.2f%% of samples below 32.5%% -> %.1f%% idle cycles at p99\n",
              cdf.FractionBelow(32.5) * 100.0, 100.0 - 32.5);
  return 0;
}
