// Figure 3: CDF of data-plane CPU utilization across the fleet.
// Paper: 1.2M per-second samples; 99.68% of values below 32.5% (67.5% of
// CPU cycles idle at the p99 provisioning point).
//
// Runs on the fleet layer: a 12-node cluster in one deterministic
// simulation, each (node, CPU) drawing its average load from the lognormal
// fleet mix and carrying bursty traffic at that level. Per-second
// utilization is sampled exactly as the production collector does, via a
// cluster epoch hook with a one-second epoch.
#include "bench/common.h"
#include "src/fleet/cluster.h"
#include "src/fleet/load_gen.h"

using namespace taichi;

int main(int argc, char** argv) {
  bench::PrintHeader("Figure 3", "CDF of data-plane CPU utilization (per-second samples)");

  constexpr int kNodes = 12;
  constexpr int kSeconds = 20;

  fleet::ClusterConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.seed = 2024;
  ccfg.epoch = sim::Seconds(1);  // The per-second collector cadence.
  ccfg.node.mode = exp::Mode::kBaseline;
  fleet::Cluster cluster(ccfg);

  fleet::LoadGenConfig lcfg;
  lcfg.seed = 2024;
  lcfg.vm_arrivals = false;   // Fig. 3 measures the data plane only.
  lcfg.spawn_monitors = false;
  fleet::LoadGen load(&cluster, lcfg);
  load.Start();

  sim::CdfBuilder cdf;
  std::vector<std::vector<sim::Duration>> last_work(kNodes);
  for (int n = 0; n < kNodes; ++n) {
    last_work[n].assign(cluster.node(n).service_count(), 0);
  }
  cluster.AddEpochHook([&](sim::SimTime) {
    for (int n = 0; n < kNodes; ++n) {
      exp::Testbed& bed = cluster.node(n);
      for (size_t i = 0; i < bed.service_count(); ++i) {
        sim::Duration work = bed.service(i).work_time();
        cdf.Add(sim::ToSeconds(work - last_work[n][i]) * 100.0);
        last_work[n][i] = work;
      }
    }
  });
  cluster.RunFor(sim::Seconds(kSeconds));
  load.Stop();

  sim::Table t({"Utilization threshold (%)", "Fraction of samples below"});
  for (double x : {5.0, 10.0, 15.0, 20.0, 25.0, 32.5, 40.0, 50.0, 75.0}) {
    t.AddRow({sim::Table::Num(x, 1), sim::Table::Num(cdf.FractionBelow(x) * 100.0, 2) + "%"});
  }
  t.Print();
  std::printf("\nSamples: %zu   paper: 99.68%% of samples below 32.5%% utilization\n",
              cdf.count());
  std::printf("measured: %.2f%% of samples below 32.5%% -> %.1f%% idle cycles at p99\n",
              cdf.FractionBelow(32.5) * 100.0, 100.0 - 32.5);

  bench::JsonReport json("fig03_dp_util_cdf", argc, argv);
  json.Config("nodes", static_cast<int64_t>(kNodes));
  json.Config("seconds", static_cast<int64_t>(kSeconds));
  json.Config("seed", static_cast<int64_t>(ccfg.seed));
  json.Metric("samples", static_cast<int64_t>(cdf.count()));
  for (double x : {10.0, 25.0, 32.5, 50.0}) {
    char key[48];
    std::snprintf(key, sizeof(key), "fraction_below_%.1f_pct", x);
    json.Metric(key, cdf.FractionBelow(x));
  }
  json.Metric("p99_util_pct", cdf.Quantile(0.99));
  return json.Write() ? 0 : 1;
}
