// Figure 11: average synth_cp execution time under varying control-plane
// concurrency, baseline vs Tai Chi, with data-plane utilization held at the
// production p99 (~30%). Paper: Tai Chi is ~4x faster at 32 concurrent
// tasks because idle DP cycles become vCPU capacity for the control plane.
#include "bench/common.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 11",
                     "synth_cp avg execution time vs concurrency (DP util ~30%)");

  const std::vector<int> kConcurrency = {1, 2, 4, 8, 16, 24, 32};
  sim::Table t({"Concurrency", "Baseline (ms)", "Tai Chi (ms)", "Speedup"});

  for (int c : kConcurrency) {
    auto run = [&](exp::Mode mode) {
      auto bed = bench::MakeTestbed(mode, 42 + c, [](exp::TestbedConfig& cfg) {
        // Production-weight steady CP background (the ecosystem of §3.2:
        // hundreds of monitors, collectors and orchestration agents) keeps
        // a sizable fraction of the 4-CPU static partition busy in both
        // modes: near-continuous agents with short sleeps.
        cfg.monitors.count = 8;
        cfg.monitors.period_mean = sim::Micros(400);
        cfg.monitors.user_work_mean = sim::Micros(300);
      });
      return exp::RunSynthCp(bed.get(), c, /*dp_utilization=*/0.30);
    };
    exp::SynthCpResult base = run(exp::Mode::kBaseline);
    exp::SynthCpResult taichi = run(exp::Mode::kTaiChi);
    double base_ms = base.exec_time_ms.mean();
    double taichi_ms = taichi.exec_time_ms.mean();
    t.AddRow({std::to_string(c), sim::Table::Num(base_ms, 1),
              sim::Table::Num(taichi_ms, 1),
              sim::Table::Num(base_ms / taichi_ms, 2) + "x"});
  }
  t.Print();
  std::printf("\npaper: ~4x speedup at 32 concurrent tasks (task demand 50 ms)\n");
  return 0;
}
