// Figure 16: Nginx requests per second under high connection concurrency
// (wrk), HTTP and HTTPS, long and short connections. Paper: 0.51% average
// overhead for Tai Chi, up to ~1% for short-connection scenarios.
#include "bench/common.h"
#include "src/apps/nginx_sim.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 16", "Nginx (wrk, high concurrency): Tai Chi vs baseline");

  struct Scenario {
    const char* name;
    bool https;
    bool short_conn;
  };
  const std::vector<Scenario> kScenarios = {
      {"HTTP long", false, false},
      {"HTTP short", false, true},
      {"HTTPS long", true, false},
      {"HTTPS short", true, true},
  };

  sim::Table t({"Scenario", "Baseline (req/s)", "Tai Chi (req/s)", "Overhead"});
  double sum = 0;
  double worst = 0;
  for (const Scenario& s : kScenarios) {
    auto run = [&](exp::Mode mode) {
      auto bed = bench::MakeTestbed(mode);
      bed->SpawnBackgroundCp();
      bed->sim().RunFor(sim::Millis(2));
      apps::NginxConfig ncfg;
      ncfg.https = s.https;
      ncfg.short_connection = s.short_conn;
      apps::NginxSim nginx(bed.get(), ncfg);
      return nginx.Run(sim::Millis(100), sim::Millis(30));
    };
    apps::NginxResult base = run(exp::Mode::kBaseline);
    apps::NginxResult taichi = run(exp::Mode::kTaiChi);
    double overhead = (1.0 - taichi.requests_per_sec / base.requests_per_sec) * 100.0;
    sum += overhead;
    worst = std::max(worst, overhead);
    t.AddRow({s.name, sim::Table::Num(base.requests_per_sec, 0),
              sim::Table::Num(taichi.requests_per_sec, 0),
              sim::Table::Num(overhead, 2) + "%"});
  }
  t.Print();
  std::printf("\nmeasured: avg %.2f%%, worst %.2f%%\n", sum / kScenarios.size(), worst);
  std::printf("paper: 0.51%% average overhead, up to ~1%% in short-connection scenarios\n");
  return 0;
}
