// Figure 5: the number of non-preemptible routines by duration band.
// Paper: tracing production nodes for 12 h found >456,000 routines longer
// than 1 ms, 94.5% of them lasting 1-5 ms, with a maximum of 67 ms.
//
// We run the baseline node with a production-like CP fleet (device
// management churn + monitors) and let the kernel's non-preemption tracer
// collect every episode.
#include <map>

#include "bench/common.h"
#include "src/cp/cp_profiles.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 5", "Non-preemptible routine durations (>1 ms long tail)");

  auto bed = bench::MakeTestbed(exp::Mode::kBaseline);
  uint64_t total = 0;
  uint64_t over_1ms = 0;
  double max_ms = 0;
  std::map<int, uint64_t> bands;  // Lower bound in ms -> count.
  const std::vector<std::pair<int, int>> kBands = {
      {1, 5}, {5, 10}, {10, 20}, {20, 30}, {30, 40}, {40, 50}, {50, 70}};

  bed->kernel().set_nonpreempt_tracer([&](const os::Task&, sim::Duration d) {
    ++total;
    double ms = sim::ToMillis(d);
    max_ms = std::max(max_ms, ms);
    if (ms < 1.0) {
      return;
    }
    ++over_1ms;
    for (auto [lo, hi] : kBands) {
      if (ms >= lo && ms < hi) {
        ++bands[lo];
        break;
      }
    }
  });

  // Production-like CP churn: device-management-style tasks with the Fig. 5
  // routine mixture, plus the standard monitor fleet.
  bed->SpawnBackgroundCp();
  cp::CpWorkProfile profile;  // Defaults follow the Fig. 5 mixture.
  os::KernelSpinlock driver_lock("driver_lock");
  profile.lock = &driver_lock;
  for (int i = 0; i < 8; ++i) {
    bed->kernel().Spawn("cp_churn_" + std::to_string(i),
                        cp::MakeCpTask(profile, /*iterations=*/0, 500 + i),
                        bed->cp_task_cpus());
  }
  bed->sim().RunFor(sim::Seconds(40));

  sim::Table t({"Duration band", "Count", "Share of >1ms routines"});
  for (auto [lo, hi] : kBands) {
    uint64_t count = bands.count(lo) ? bands[lo] : 0;
    char label[32];
    std::snprintf(label, sizeof(label), "%d-%d ms", lo, hi);
    t.AddRow({label, std::to_string(count),
              sim::Table::Num(over_1ms ? 100.0 * count / over_1ms : 0, 1) + "%"});
  }
  t.Print();
  std::printf("\nroutines traced: %llu   >1ms: %llu   max: %.1f ms\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(over_1ms), max_ms);
  std::printf("paper: 94.5%% of >1ms routines in 1-5 ms, max 67 ms\n");
  std::printf("measured: %.1f%% in 1-5 ms\n",
              over_1ms ? 100.0 * bands[1] / over_1ms : 0.0);
  return 0;
}
