// Figure 12: netperf tcp_crr network performance (connections per second,
// average RX/TX packets per second) under four mechanisms.
// Paper: Tai Chi -0.2%, Tai Chi-vDP (type-1) ~-8%, type-2 (QEMU+KVM) ~-26%
// versus the static-partition baseline.
#include "bench/common.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 12", "netperf tcp_crr across virtualization mechanisms");

  struct Row {
    exp::Mode mode;
    exp::RrResult result;
  };
  std::vector<Row> rows;

  for (exp::Mode mode : {exp::Mode::kBaseline, exp::Mode::kTaiChi, exp::Mode::kTaiChiVdp,
                         exp::Mode::kType2}) {
    auto bed = bench::MakeTestbed(mode);
    bed->SpawnBackgroundCp();
    bed->sim().RunFor(sim::Millis(2));
    exp::RrConfig rcfg;
    rcfg.connections = 256;
    rcfg.round_trips_per_txn = 3;  // Connect / request-response / close.
    rcfg.setup_dp_cost_ns = 1500;  // Flow-table install + teardown.
    exp::RrRunner rr(bed.get(), rcfg);
    rows.push_back({mode, rr.Run(sim::Millis(80), sim::Millis(20))});
  }

  const exp::RrResult& base = rows[0].result;
  sim::Table t({"Mechanism", "CPS", "vs base", "avg_rx_pps", "avg_tx_pps", "pps vs base"});
  for (const Row& row : rows) {
    t.AddRow({exp::ToString(row.mode), sim::Table::Num(row.result.txn_per_sec, 0),
              bench::Pct(row.result.txn_per_sec, base.txn_per_sec),
              sim::Table::Num(row.result.rx_pps, 0), sim::Table::Num(row.result.tx_pps, 0),
              bench::Pct(row.result.rx_pps, base.rx_pps)});
  }
  t.Print();
  std::printf("\npaper: Tai Chi ~-0.2%%, Tai Chi-vDP ~-8%%, type-2 ~-26%% vs baseline\n");
  return 0;
}
