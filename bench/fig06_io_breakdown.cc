// Figure 6: the breakdown of processing I/O packets in DP services.
// Paper: (1) driver -> SmartNIC, (2) accelerator preprocess 2.7 us,
// (3) transfer to shared memory 0.5 us, (4) DP software processing.
#include "bench/common.h"

using namespace taichi;

int main() {
  bench::PrintHeader("Figure 6", "I/O packet processing breakdown in DP services");
  auto bed = bench::MakeTestbed(exp::Mode::kBaseline);

  // Walk a single packet through the path and observe each timestamp.
  sim::SimTime vm_arrival = 0;
  bed->RegisterVmSink(30, [&](const hw::IoPacket&, sim::SimTime t) { vm_arrival = t; });

  hw::IoPacket pkt;
  pkt.kind = hw::IoKind::kNetRx;
  pkt.size_bytes = 512;
  pkt.flow = 0;
  pkt.user_tag = exp::Testbed::Tag(30, 1);
  sim::SimTime t0 = bed->sim().Now();
  bed->Inject(pkt);  // Raw ingress, no wire leg: the Fig. 6 window itself.
  bed->sim().RunFor(sim::Millis(1));

  const auto& accel_cfg = bed->machine().config().accelerator;
  const auto& residency = bed->machine().accelerator().residency_us();

  sim::Table t({"Stage", "Duration"});
  t.AddRow({"(2) accelerator preprocessing", sim::FormatDuration(accel_cfg.preprocess_latency)});
  t.AddRow({"(3) transfer to shared memory", sim::FormatDuration(accel_cfg.transfer_latency)});
  t.AddRow({"(2)+(3) scheduling window (measured)",
            sim::Table::Num(residency.mean(), 2) + "us"});
  t.AddRow({"(4) DP software processing + delivery (measured)",
            sim::Table::Num(sim::ToMicros(vm_arrival - t0) - residency.mean(), 2) + "us"});
  t.Print();

  std::printf(
      "\nObservation 4: the %.1f us preprocessing window hides the ~%.1f us\n"
      "vCPU-to-pCPU scheduling latency (VM-exit + restore).\n",
      residency.mean(),
      sim::ToMicros(os::KernelConfig{}.guest.exit_cost));
  return 0;
}
